"""f(initOffset) inference: exact linear fits and rendering."""

from __future__ import annotations

import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsetfn import OffsetFunction, fit_offsets

MB32 = 32 * 1024 * 1024


class TestFit:
    def test_madbench_table_viii(self):
        """initOffset = idP * 8 * 32MB."""
        pairs = {p: p * 8 * MB32 for p in range(16)}
        fn = fit_offsets(pairs)
        assert fn.is_linear
        assert fn.slope == 8 * MB32 and fn.intercept == 0
        assert fn(5) == 5 * 8 * MB32
        assert fn.expression(rs=MB32) == "idP * 8 * rs"

    def test_intercept_rendering(self):
        pairs = {p: p * 8 * MB32 + 2 * MB32 for p in range(4)}
        fn = fit_offsets(pairs)
        assert fn.expression(rs=MB32) == "idP * 8 * rs + 2 * rs"

    def test_negative_intercept_rendering(self):
        pairs = {p: p * 4 * MB32 - 2 * MB32 for p in range(1, 5)}
        fn = fit_offsets(pairs)
        assert fn.expression(rs=MB32) == "idP * 4 * rs - 2 * rs"

    def test_btio_table_xi(self):
        """initOffset = rs*idP + rs*(ph-1)*np for phase 3, np=16."""
        rs, np_, ph = 10_628_800, 16, 3
        pairs = {p: rs * p + rs * (ph - 1) * np_ for p in range(np_)}
        fn = fit_offsets(pairs)
        assert fn.slope == rs
        assert fn.intercept == rs * (ph - 1) * np_
        assert fn.expression(rs=rs) == "idP * rs + 32 * rs"

    def test_constant_offsets(self):
        fn = fit_offsets({p: 777 for p in range(8)})
        assert fn.is_linear and fn.slope == 0
        assert fn(3) == 777

    def test_single_pair(self):
        fn = fit_offsets({2: 100})
        assert fn.is_linear
        assert fn(2) == 100

    def test_nonlinear_falls_back_to_table(self):
        fn = fit_offsets({0: 0, 1: 10, 2: 25})
        assert not fn.is_linear
        assert fn(2) == 25
        with pytest.raises(KeyError):
            fn(3)
        assert fn.expression().startswith("table(")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_offsets({})

    def test_fractional_slope_exact(self):
        # Even-rank-only phase: offsets every 2 ranks.
        fn = fit_offsets({0: 0, 2: 100, 4: 200})
        assert fn.is_linear and fn.slope == Fraction(50)

    def test_expression_without_rs(self):
        fn = fit_offsets({0: 5, 1: 15})
        assert fn.expression() == "idP * 10 + 5"

    def test_zero_everything(self):
        fn = fit_offsets({0: 0, 1: 0})
        assert fn.expression(rs=100) == "0"


class TestProperty:
    @given(
        slope=st.integers(-10**9, 10**9),
        intercept=st.integers(0, 10**12),
        ranks=st.lists(st.integers(0, 200), min_size=2, max_size=32,
                       unique=True),
    )
    @settings(max_examples=150, deadline=None)
    def test_recovers_any_integer_line(self, slope, intercept, ranks):
        pairs = {r: slope * r + intercept for r in ranks}
        fn = fit_offsets(pairs)
        assert fn.is_linear
        for r in ranks:
            assert fn(r) == pairs[r]
        # Extrapolation also follows the line.
        assert fn(max(ranks) + 1) == slope * (max(ranks) + 1) + intercept

    @given(st.dictionaries(st.integers(0, 50), st.integers(0, 10**9),
                           min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_fit_always_reproduces_observations(self, pairs):
        fn = fit_offsets(pairs)
        for r, off in pairs.items():
            assert fn(r) == off

"""IOModel: construction, aggregates, JSON round trips, describe."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.tracer import trace_run


def app(ctx):
    fh = ctx.file_open("data")
    for k in range(3):
        ctx.allreduce(1)
        ctx.allreduce(1)
        fh.write_at_all(ctx.rank * 300 + k * 100, 100)
    for k in range(3):
        fh.read_at_all(ctx.rank * 300 + k * 100, 100)
    fh.close()


@pytest.fixture(scope="module")
def model() -> IOModel:
    return IOModel.from_trace(trace_run(app, 4), app_name="toy")


class TestConstruction:
    def test_phase_structure(self, model):
        # 3 gap-separated writes + 1 read phase of rep 3.
        assert model.nphases == 4
        assert [ph.op_label for ph in model.phases] == ["W", "W", "W", "R"]
        assert model.phases[-1].rep == 3

    def test_total_weight(self, model):
        assert model.total_weight == 4 * 6 * 100

    def test_weight_by_kind(self, model):
        by_kind = model.weight_by_kind()
        assert by_kind == {"write": 1200, "read": 1200}

    def test_file_groups(self, model):
        assert model.file_groups == ["data"]
        assert len(model.phases_for("data")) == 4
        assert model.phases_for("nope") == []

    def test_np_recorded(self, model):
        assert model.np == 4
        assert all(ph.np == 4 for ph in model.phases)


class TestSerialization:
    def test_json_roundtrip(self, model):
        back = IOModel.from_json(model.to_json())
        assert back.app_name == model.app_name
        assert back.np == model.np
        assert back.nphases == model.nphases
        for a, b in zip(back.phases, model.phases):
            assert a.weight == b.weight
            assert a.ranks == b.ranks
            assert a.rep == b.rep
            assert [o.op for o in a.ops] == [o.op for o in b.ops]
            for oa, ob in zip(a.ops, b.ops):
                assert oa.offset_fn(2) == ob.offset_fn(2)
                assert oa.abs_offset_fn(3) == ob.abs_offset_fn(3)

    def test_save_load(self, model, tmp_path):
        path = tmp_path / "m.json"
        model.save(path)
        back = IOModel.load(path)
        assert back.nphases == model.nphases

    def test_table_offsetfn_survives_roundtrip(self):
        """Non-linear offsets serialize via the table fallback."""
        from repro.core.offsetfn import OffsetFunction, fit_offsets
        from repro.core.model import _offsetfn_from_dict, _offsetfn_to_dict

        fn = fit_offsets({0: 0, 1: 10, 2: 25})
        back = _offsetfn_from_dict(_offsetfn_to_dict(fn))
        assert not back.is_linear
        assert back(1) == 10 and back(2) == 25


class TestDescribe:
    def test_describe_mentions_phases_and_metadata(self, model):
        text = model.describe()
        assert "toy" in text
        assert "phase 4" in text
        assert "Collective operations" in text
        assert "weight" in text


class TestModelsEquivalent:
    def test_same_app_different_platform(self):
        from repro.core.model import models_equivalent
        from tests.conftest import make_nfs_cluster

        m1 = IOModel.from_trace(trace_run(app, 4))
        m2 = IOModel.from_trace(trace_run(app, 4, make_nfs_cluster()))
        assert models_equivalent(m1, m2)

    def test_different_np_not_equivalent(self):
        from repro.core.model import models_equivalent

        def app9(ctx):
            fh = ctx.file_open("data")
            fh.write_at_all(ctx.rank * 100, 100)
            fh.close()

        m1 = IOModel.from_trace(trace_run(app9, 4))
        m2 = IOModel.from_trace(trace_run(app9, 9))
        assert not models_equivalent(m1, m2)

    def test_different_request_size_not_equivalent(self):
        from repro.core.model import models_equivalent

        def app_a(ctx):
            fh = ctx.file_open("data")
            fh.write_at_all(ctx.rank * 100, 100)
            fh.close()

        def app_b(ctx):
            fh = ctx.file_open("data")
            fh.write_at_all(ctx.rank * 200, 200)
            fh.close()

        m1 = IOModel.from_trace(trace_run(app_a, 4))
        m2 = IOModel.from_trace(trace_run(app_b, 4))
        assert not models_equivalent(m1, m2)

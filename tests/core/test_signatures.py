"""Byna-style I/O signature classification."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.core.signatures import (
    classify_model,
    classify_phase,
    dominant_signature,
    signature_histogram,
    similarity,
)
from repro.tracer import trace_run

MB = 1024 * 1024


def seq_writer(ctx):
    fh = ctx.file_open("data")
    fh.seek(ctx.rank * 64 * MB)
    for _ in range(8):
        fh.write(8 * MB)
    fh.close()


def strided_writer(ctx):
    fh = ctx.file_open("data")
    for k in range(8):
        fh.write_at(ctx.rank * 8 * MB + k * ctx.size * 8 * MB, 8 * MB)
    fh.close()


def small_random_writer(ctx):
    fh = ctx.file_open("data", unique=True)
    for k in range(6):
        fh.write_at((k * 7919) % 64 * 1024, 1024)
    fh.close()


def model_of(app, np_=4):
    return IOModel.from_trace(trace_run(app, np_))


class TestClassification:
    def test_sequential_large(self):
        model = model_of(seq_writer)
        sig = classify_phase(model.phases[0])
        assert sig.spatial == "contiguous"
        assert sig.request_class == "large"
        assert sig.repetition == "repeating"
        assert sig.parallelism == "independent"
        assert sig.sharing == "shared"

    def test_strided(self):
        model = model_of(strided_writer)
        sig = classify_phase(model.phases[0])
        assert sig.spatial == "fixed-strided"

    def test_small_unique(self):
        model = model_of(small_random_writer)
        sigs = list(classify_model(model).values())
        assert any(s.request_class == "small" for s in sigs)
        assert all(s.sharing == "unique" for s in sigs)

    def test_single_op_phase(self):
        def one_shot(ctx):
            fh = ctx.file_open("data")
            fh.write_at_all(ctx.rank * MB, MB)
            fh.close()

        model = model_of(one_shot)
        sig = classify_phase(model.phases[0])
        assert sig.spatial == "single"
        assert sig.repetition == "single"
        assert sig.parallelism == "collective"

    def test_mixed_unit_is_interleaved(self):
        def mixed(ctx):
            fh = ctx.file_open("data")
            base = ctx.rank * 64 * MB
            for k in range(4):
                fh.seek(base + k * MB)
                fh.write(MB)
                fh.seek(base + 32 * MB + k * MB)
                fh.read(MB)
            fh.close()

        model = model_of(mixed)
        sig = classify_phase(model.phases[0])
        assert sig.interleaved


class TestAggregates:
    def test_histogram_counts_phases(self):
        model = model_of(seq_writer)
        hist = signature_histogram(model)
        assert sum(hist.values()) == model.nphases

    def test_dominant_by_weight(self):
        def two_patterns(ctx):
            fh = ctx.file_open("data")
            # a big contiguous run ...
            fh.seek(ctx.rank * 128 * MB)
            for _ in range(8):
                fh.write(8 * MB)
            ctx.allreduce(1)
            ctx.allreduce(1)
            # ... and a tiny strided one
            for k in range(4):
                fh.write_at(1024 * MB + ctx.rank * 1024 + k * ctx.size * 4096, 1024)
            fh.close()

        model = model_of(two_patterns)
        dom = dominant_signature(model)
        assert dom.request_class == "large"

    def test_similarity_identity(self):
        m = model_of(seq_writer)
        assert similarity(m, m) == pytest.approx(1.0)

    def test_similarity_related_apps(self):
        m1 = model_of(seq_writer)
        m2 = model_of(seq_writer, np_=9)
        assert similarity(m1, m2) > 0.9

    def test_similarity_unrelated_apps(self):
        m1 = model_of(seq_writer)
        m2 = model_of(small_random_writer)
        assert similarity(m1, m2) < 0.3

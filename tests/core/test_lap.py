"""LAP extraction: bursts, tandem repeats, round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lap import (
    compress_burst,
    expand_entry,
    extract_laps,
    split_bursts,
)
from repro.tracer.tracefile import TraceRecord


def rec(rank=0, op="MPI_File_write", offset=0, tick=1, rs=100, fid=0):
    return TraceRecord(rank=rank, file_id=fid, op=op, offset=offset,
                       tick=tick, request_size=rs, time=float(tick),
                       duration=0.01, abs_offset=offset)


def seq(ops, start_tick=1, adjacent=True, rank=0):
    """Build records from (op, offset, rs) tuples."""
    out = []
    tick = start_tick
    for op, off, rs in ops:
        out.append(rec(rank=rank, op=op, offset=off, tick=tick, rs=rs))
        tick += 1 if adjacent else 100
    return out


class TestSplitBursts:
    def test_adjacent_records_one_burst(self):
        records = seq([("MPI_File_write", i * 10, 10) for i in range(5)])
        assert len(split_bursts(records)) == 1

    def test_tick_gaps_split(self):
        records = seq([("MPI_File_write", i * 10, 10) for i in range(5)],
                      adjacent=False)
        assert len(split_bursts(records)) == 5

    def test_gap_tolerance(self):
        records = [rec(tick=1), rec(tick=3, offset=10)]
        assert len(split_bursts(records, gap=1)) == 2
        assert len(split_bursts(records, gap=2)) == 1

    def test_empty(self):
        assert split_bursts([]) == []


class TestCompressBurst:
    def test_uniform_run_compresses_to_one_entry(self):
        records = seq([("MPI_File_write", i * 100, 100) for i in range(40)])
        (entry,) = compress_burst(records)
        assert entry.rep == 40
        assert len(entry.ops) == 1
        assert entry.ops[0].disp == 100
        assert entry.ops[0].init_offset == 0
        assert entry.nbytes == 4000

    def test_irregular_offsets_not_merged(self):
        records = seq([("MPI_File_write", off, 10)
                       for off in (0, 10, 25, 31)])
        entries = compress_burst(records)
        assert sum(e.rep * len(e.ops) for e in entries) == 4
        assert len(entries) > 1

    def test_madbench_w_function_decomposition(self):
        """R R (W R)x6 W W -> three pattern groups (Table VIII rows 2-4)."""
        base = 0
        rs = 32
        ops = []
        ops += [("MPI_File_read", base + j * rs, rs) for j in range(2)]
        for j in range(2, 8):
            ops.append(("MPI_File_write", base + (j - 2) * rs, rs))
            ops.append(("MPI_File_read", base + j * rs, rs))
        ops += [("MPI_File_write", base + j * rs, rs) for j in (6, 7)]
        entries = compress_burst(seq(ops))
        assert [ (e.rep, tuple(o.kind for o in e.ops)) for e in entries] == [
            (2, ("read",)),
            (6, ("write", "read")),
            (2, ("write",)),
        ]
        wr = entries[1]
        assert wr.ops[0].init_offset == 0  # writes from the region base
        assert wr.ops[1].init_offset == 2 * rs  # reads 2 bins ahead
        assert wr.ops[0].disp == rs and wr.ops[1].disp == rs

    def test_single_record(self):
        (entry,) = compress_burst([rec()])
        assert entry.rep == 1 and entry.ops[0].disp == 0

    def test_alternating_without_repetition_kept_as_singles(self):
        records = seq([("MPI_File_write", 0, 10), ("MPI_File_read", 50, 20)])
        entries = compress_burst(records)
        assert sum(e.rep * len(e.ops) for e in entries) == 2


class TestExtractLaps:
    def test_groups_by_rank_and_file(self):
        records = (
            seq([("MPI_File_write", i * 10, 10) for i in range(3)], rank=0)
            + seq([("MPI_File_write", i * 10, 10) for i in range(3)], rank=1)
        )
        entries = extract_laps(records)
        assert len(entries) == 2
        assert {e.rank for e in entries} == {0, 1}

    def test_signature_excludes_offsets(self):
        a = extract_laps(seq([("MPI_File_write", 100 + i * 10, 10)
                              for i in range(4)], rank=0))[0]
        b = extract_laps(seq([("MPI_File_write", 900 + i * 10, 10)
                              for i in range(4)], rank=1))[0]
        assert a.signature == b.signature
        assert a.ops[0].init_offset != b.ops[0].init_offset

    def test_to_lines_format(self):
        (entry,) = extract_laps(seq([("MPI_File_write", i * 10, 10)
                                     for i in range(4)]))
        (line,) = entry.to_lines()
        assert line.split() == ["0", "0", "MPI_File_write", "4", "10", "10", "0"]


@st.composite
def lap_shapes(draw):
    """Random (op, rep, rs, disp, init) unit patterns."""
    nunits = draw(st.integers(1, 3))
    units = []
    for _ in range(nunits):
        units.append((
            draw(st.sampled_from(["MPI_File_write", "MPI_File_read"])),
            draw(st.integers(1, 1000)),  # rs
            draw(st.integers(0, 500)),  # disp
            draw(st.integers(0, 10_000)),  # init offset
        ))
    rep = draw(st.integers(1, 12))
    return units, rep


class TestRoundTripProperty:
    @given(lap_shapes())
    @settings(max_examples=100, deadline=None)
    def test_compress_then_expand_preserves_operations(self, shape):
        units, rep = shape
        ops = []
        for k in range(rep):
            for op, rs, disp, init in units:
                ops.append((op, init + k * disp, rs))
        records = seq(ops)
        entries = compress_burst(records)
        expanded = [item for e in entries for item in expand_entry(e)]
        assert expanded == [(op, off, rs) for op, off, rs in ops]

    @given(lap_shapes())
    @settings(max_examples=60, deadline=None)
    def test_total_bytes_preserved(self, shape):
        units, rep = shape
        ops = []
        for k in range(rep):
            for op, rs, disp, init in units:
                ops.append((op, init + k * disp, rs))
        entries = compress_burst(seq(ops))
        assert sum(e.nbytes for e in entries) == sum(rs for _, _, rs in ops)

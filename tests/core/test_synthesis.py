"""Model-driven synthesis: the model -> program -> model round trip."""

from __future__ import annotations

import pytest

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.core.model import IOModel, models_equivalent
from repro.core.synthesis import SynthesisError, replay_model, synthesize_program
from repro.simmpi import Engine, IdealPlatform, MPIUsageError
from repro.tracer import trace_run

from tests.conftest import make_nfs_cluster

MB = 1024 * 1024


def model_of(program, np_, *args, name="app"):
    return IOModel.from_trace(trace_run(program, np_, None, *args), name)


class TestRoundTrip:
    def test_madbench(self):
        m = model_of(madbench2_program, 4, MADbench2Params(kpix=4))
        replayed, _ = replay_model(m)
        assert models_equivalent(m, replayed)

    def test_btio(self):
        m = model_of(btio_program, 4,
                     BTIOParams(cls="A", comm_events_per_step=2))
        replayed, _ = replay_model(m)
        assert models_equivalent(m, replayed)

    def test_unique_files(self):
        def app(ctx):
            fh = ctx.file_open("out", unique=True)
            for k in range(4):
                fh.write_at(k * MB, MB)
            fh.close()

        m = model_of(app, 3)
        replayed, _ = replay_model(m)
        assert models_equivalent(m, replayed)

    def test_addressing_preserved(self):
        """Individual-pointer routines replay as individual-pointer ops."""
        def app(ctx):
            fh = ctx.file_open("f")
            fh.seek(ctx.rank * 4 * MB)
            for _ in range(4):
                fh.write(MB)
            fh.close()

        m = model_of(app, 2)
        replayed, _ = replay_model(m)
        assert replayed.phases[0].ops[0].op == "MPI_File_write"

    def test_replay_total_bytes(self):
        m = model_of(madbench2_program, 4, MADbench2Params(kpix=4))
        replayed, bundle = replay_model(m)
        assert bundle.total_bytes == m.total_weight


class TestSemantics:
    def test_wrong_np_rejected(self):
        m = model_of(madbench2_program, 4, MADbench2Params(kpix=4))
        program = synthesize_program(m)
        with pytest.raises(MPIUsageError):
            Engine(9, platform=IdealPlatform()).run(program)

    def test_table_offsets_rejected(self):
        def irregular(ctx):
            fh = ctx.file_open("f", unique=True)
            fh.write_at([0, 10, 25, 700][ctx.rank], 1024)
            fh.close()

        m = model_of(irregular, 4)
        # Offsets 0/10/25/700 fit no line -> table fallback -> unsynthesizable.
        assert any(not op.abs_offset_fn.is_linear
                   for ph in m.phases for op in ph.ops)
        with pytest.raises(SynthesisError):
            synthesize_program(m)

    def test_replay_on_real_cluster(self):
        """A synthesized replay can be *measured* like the application."""
        m = model_of(madbench2_program, 4, MADbench2Params(kpix=4))
        replayed, _ = replay_model(m, platform=make_nfs_cluster())
        assert replayed.nphases == m.nphases
        assert all(ph.duration > 0 for ph in replayed.phases)

    def test_compute_gap_does_not_change_model(self):
        m = model_of(madbench2_program, 4, MADbench2Params(kpix=4))
        replayed, _ = replay_model(m, compute_between_phases=0.5)
        assert models_equivalent(m, replayed)

"""Replay planner: dedup across phases and configurations, exact fan-out."""

from __future__ import annotations

from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.core import cache as simcache
from repro.core.estimate import estimate_model, select_configuration
from repro.core.offsetfn import OffsetFunction
from repro.core.phases import Phase, PhaseOp
from repro.core.planner import (
    ReplayPlan,
    build_replay_plan,
    phase_signature,
)
from repro.core.sweep import JobFailure, SweepJobError

from tests.conftest import make_nfs_cluster, make_pvfs_cluster

MB = 1024 * 1024


def make_phase(pid: int, rs: int = MB, rep: int = 4,
               op: str = "write_at") -> Phase:
    offs = OffsetFunction(slope=Fraction(rs * rep), intercept=Fraction(0))
    unit = PhaseOp(op=op, kind="read" if "read" in op else "write",
                   request_size=rs, disp=0,
                   offset_fn=offs, abs_offset_fn=offs)
    return Phase(phase_id=pid, file_group="data", rep=rep, ops=(unit,),
                 ranks=(0, 1, 2, 3), tick=float(pid * 100),
                 first_time=float(pid), duration=1.0)


def nfs_a():
    return make_nfs_cluster()


def nfs_b():  # distinct callable, structurally identical cluster
    return make_nfs_cluster()


def pvfs():
    return make_pvfs_cluster()


def fake_runner(calls):
    def run(phase, factory):
        calls.append((phase_signature(phase),
                      simcache.factory_fingerprint(factory)))
        return SimpleNamespace(bw_ch_mb_s=100.0,
                               bw_ch_by_kind={"write": 100.0})
    return run


class TestDedup:
    def test_identical_phases_share_one_job(self):
        phases = [make_phase(1), make_phase(2), make_phase(3),
                  make_phase(4, rs=4 * MB)]
        plan = build_replay_plan(phases, {"a": nfs_a})
        assert plan.requests == 4
        assert plan.unique == 2  # three equal signatures + one distinct

    def test_signature_ignores_timing_but_not_geometry(self):
        assert phase_signature(make_phase(1)) == phase_signature(make_phase(9))
        assert phase_signature(make_phase(1)) \
            != phase_signature(make_phase(1, rep=8))
        assert phase_signature(make_phase(1)) \
            != phase_signature(make_phase(1, op="read_at"))

    def test_equal_fingerprints_dedupe_across_configs(self):
        phases = [make_phase(1), make_phase(2, rs=4 * MB)]
        plan = build_replay_plan(phases, {"a": nfs_a, "b": nfs_b})
        assert plan.requests == 4
        assert plan.unique == 2  # both configs feed off the same jobs

    def test_distinct_fingerprints_do_not_dedupe(self):
        phases = [make_phase(1)]
        plan = build_replay_plan(phases, {"a": nfs_a, "p": pvfs})
        assert plan.unique == 2

    def test_fingerprintless_factories_get_private_jobs(self):
        def bare_a():
            return SimpleNamespace()  # no fingerprint()

        def bare_b():
            return SimpleNamespace()

        plan = build_replay_plan([make_phase(1)],
                                 {"a": bare_a, "b": bare_b})
        assert plan.unique == 2  # no cross-config sharing without identity


class TestExecute:
    def test_executes_only_unique_jobs(self):
        phases = [make_phase(i) for i in range(1, 6)] \
            + [make_phase(6, rs=4 * MB)]
        plan = build_replay_plan(phases, {"a": nfs_a, "b": nfs_b})
        calls: list = []
        reports = plan.execute(runner=fake_runner(calls))
        assert len(calls) == plan.unique == 2
        assert plan.requests == 12
        for name in ("a", "b"):
            assert [p.phase_id for p in reports[name].phases] \
                == [ph.phase_id for ph in phases]
            assert all(p.bw_ch_mb_s == 100.0 for p in reports[name].phases)

    def test_fan_out_matches_estimate_model(self):
        phases = [make_phase(1), make_phase(2),
                  make_phase(3, rs=256 * 1024, rep=2)]
        direct = estimate_model(phases, nfs_a, config_name="a")
        plan = build_replay_plan(phases, {"a": nfs_a})
        planned = plan.execute()["a"]
        assert [p.bw_ch_mb_s for p in planned.phases] \
            == [p.bw_ch_mb_s for p in direct.phases]
        assert planned.total_time_ch == direct.total_time_ch

    def test_failed_job_fails_its_configs_only(self):
        def flaky(phase, factory):
            if factory is pvfs:
                raise RuntimeError("boom")
            return SimpleNamespace(bw_ch_mb_s=50.0, bw_ch_by_kind={})

        plan = build_replay_plan([make_phase(1)],
                                 {"good": nfs_a, "bad": pvfs})
        reports = plan.execute(runner=flaky, raise_on_error=False)
        assert not reports["bad"]  # JobFailure is falsy
        assert isinstance(reports["bad"], JobFailure)
        assert reports["good"].phases[0].bw_ch_mb_s == 50.0

    def test_raise_on_error_propagates(self):
        def boom(phase, factory):
            raise RuntimeError("boom")

        plan = build_replay_plan([make_phase(1)], {"a": nfs_a})
        with pytest.raises(SweepJobError):
            plan.execute(runner=boom)


class TestSelectConfiguration:
    def test_selection_runs_through_the_planner(self, monkeypatch):
        import repro.core.planner as planner_mod

        calls: list = []
        real = planner_mod.estimate_phase

        def counting(phase, factory):
            calls.append(phase_signature(phase))
            return real(phase, factory)

        monkeypatch.setattr(planner_mod, "_run_replay_job", counting)
        phases = [make_phase(i) for i in range(1, 5)]  # one signature
        choice = select_configuration(phases, {"a": nfs_a, "b": nfs_b,
                                               "p": pvfs})
        # 4 phases x 3 configs = 12 requests; 1 job for the nfs pair
        # (equal fingerprints) + 1 for pvfs.
        assert len(calls) == 2
        assert set(choice.total_times) == {"a", "b", "p"}
        assert choice.total_times["a"] == choice.total_times["b"]

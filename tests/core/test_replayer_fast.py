"""Replayer fast paths: zero-event guard, rep extrapolation, parallel sweeps."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import configuration_a, configuration_b
from repro.core import cache as simcache
from repro.core.estimate import select_configuration
from repro.core.offsetfn import OffsetFunction
from repro.core.phases import Phase, PhaseOp
from repro.core.pipeline import characterize_app, full_study
from repro.core.replayer import estimate_phase_replayed, replay_phase

from tests.conftest import make_nfs_cluster

MB = 1024 * 1024


def make_phase(rep: int, request_size: int = MB, nranks: int = 4) -> Phase:
    offs = OffsetFunction(slope=Fraction(64 * MB), intercept=Fraction(0))
    op = PhaseOp(op="write_at", kind="write", request_size=request_size,
                 disp=0, offset_fn=offs, abs_offset_fn=offs)
    return Phase(phase_id=1, file_group="f", rep=rep, ops=(op,),
                 ranks=tuple(range(nranks)), tick=1.0, first_time=0.0,
                 duration=1.0)


class TestZeroEventGuard:
    def test_zero_rep_phase_returns_zero_bandwidth(self):
        phase = make_phase(rep=0)
        result = replay_phase(phase, make_nfs_cluster(), min_repetitions=0)
        assert result.bw_mb_s == 0.0
        assert result.bw_by_kind == {}

    def test_estimate_phase_replayed_zero(self):
        phase = make_phase(rep=0)
        assert estimate_phase_replayed(phase, make_nfs_cluster,
                                       min_repetitions=0) == 0.0


class TestRepExtrapolation:
    def test_matches_full_simulation(self):
        phase = make_phase(rep=48)
        full = replay_phase(phase, make_nfs_cluster(cache_mb=0))
        fast = replay_phase(phase, make_nfs_cluster(cache_mb=0),
                            extrapolate_reps=6)
        assert fast.bw_mb_s == pytest.approx(full.bw_mb_s, rel=1e-6)
        assert fast.bw_by_kind["write"] == pytest.approx(
            full.bw_by_kind["write"], rel=1e-6)

    def test_extrapolation_simulates_fewer_events(self):
        phase = make_phase(rep=48)
        simcache.disable()  # count real simulated work, not cache hits
        try:
            full = replay_phase(phase, make_nfs_cluster(cache_mb=0))
            fast = replay_phase(phase, make_nfs_cluster(cache_mb=0),
                                extrapolate_reps=6)
            assert fast.elapsed < full.elapsed
        finally:
            simcache.enable()

    def test_off_by_default_and_small_rep_untouched(self):
        phase = make_phase(rep=4)
        a = replay_phase(phase, make_nfs_cluster())
        b = replay_phase(phase, make_nfs_cluster(), extrapolate_reps=6)
        assert a.bw_mb_s == b.bw_mb_s  # K >= rep: no extrapolation

    def test_replay_memo_hits(self):
        phase = make_phase(rep=8)
        replay_phase(phase, make_nfs_cluster())
        before = simcache.stats()["replay"]
        other_id = make_phase(rep=8)
        other_id.phase_id = 99  # same signature, different phase id
        result = replay_phase(other_id, make_nfs_cluster())
        after = simcache.stats()["replay"]
        assert after["hits"] == before["hits"] + 1
        assert result.phase_id == 99


class TestParallelSweeps:
    def test_select_configuration_parallel_matches_serial(self):
        model, _ = characterize_app(
            madbench2_program, 4, MADbench2Params(kpix=1, nbin=4,
                                                  busy_seconds=0.0),
            app_name="madbench2")
        factories = {"configuration-A": configuration_a,
                     "configuration-B": configuration_b}
        serial = select_configuration(model.phases, factories)
        simcache.clear_all()
        par = select_configuration(model.phases, factories, parallel=True)
        assert par.best == serial.best
        for name in factories:
            assert par.total_times[name] == pytest.approx(
                serial.total_times[name], rel=1e-12)

    def test_full_study_parallel_matches_serial(self):
        params = MADbench2Params(kpix=1, nbin=4, busy_seconds=0.0)
        factories = {"configuration-A": configuration_a,
                     "configuration-B": configuration_b}
        serial = full_study(madbench2_program, 4, params,
                            cluster_factories=factories,
                            app_name="madbench2")
        simcache.clear_all()
        par = full_study(madbench2_program, 4, params,
                         cluster_factories=factories,
                         app_name="madbench2", parallel=True)
        assert par["selection"]["best"] == serial["selection"]["best"]
        for name in factories:
            assert (par["estimates"][name].total_time_ch
                    == pytest.approx(serial["estimates"][name].total_time_ch,
                                     rel=1e-12))

    def test_unpicklable_factories_fall_back_to_serial(self):
        model, _ = characterize_app(
            madbench2_program, 4, MADbench2Params(kpix=1, nbin=4,
                                                  busy_seconds=0.0),
            app_name="madbench2")
        factories = {"nfs": lambda: make_nfs_cluster()}
        choice = select_configuration(model.phases, factories, parallel=True)
        assert choice.best == "nfs"

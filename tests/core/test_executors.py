"""Executor conformance: serial, pool and localhost cluster backends.

The contract under test: the three backends are interchangeable.  The
same sweep -- including failures, checkpoints/resume, a worker killed
mid-sweep, and TraceColumns payloads -- produces bit-identical result
dicts and digests whichever backend runs it.

Job functions must be importable from the workers' interpreters
(``operator.mul`` & co. and repro's own module-level functions), which
is the production constraint for pool-spawn and cluster modes alike.
"""

from __future__ import annotations

import json
import operator

import pytest

from repro import obs
from repro.core.executors import (
    ClusterExecutor,
    PoolExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.core.executors import wire
from repro.core.sweep import JobFailure, sweep_map
from repro.store import CaptureStore, ResultStore

JOBS = {f"job-{i:02d}": (i, 7) for i in range(10)}
EXPECTED = {name: args[0] * args[1] for name, args in JOBS.items()}


def backends(launch_workers):
    """One instance of each backend; cluster gets two real workers."""
    return {
        "serial": SerialExecutor(),
        "pool": PoolExecutor(max_workers=2),
        "cluster": ClusterExecutor(workers=launch_workers(2)),
    }


# -- conformance ---------------------------------------------------------------

def test_backends_bit_identical(launch_workers):
    results = {name: sweep_map(operator.mul, JOBS, executor=ex)
               for name, ex in backends(launch_workers).items()}
    digests = {name: json.dumps(res, sort_keys=True)
               for name, res in results.items()}
    assert results["serial"] == EXPECTED
    assert digests["serial"] == digests["pool"] == digests["cluster"]
    # Same insertion order everywhere, not just same mapping.
    for res in results.values():
        assert list(res) == list(JOBS)


def test_failure_conformance(launch_workers):
    """A raising job yields the same falsy JobFailure on every backend."""
    jobs = {"ok": (8, 2), "boom": (1, 0), "ok2": (9, 3)}
    for name, ex in backends(launch_workers).items():
        out = sweep_map(operator.truediv, jobs, executor=ex,
                        raise_on_error=False)
        assert out["ok"] == 4.0 and out["ok2"] == 3.0, name
        failure = out["boom"]
        assert isinstance(failure, JobFailure) and not failure, name
        assert "ZeroDivisionError" in failure.error, name
        assert failure.traceback, name


def test_checkpoint_resume_across_backends(tmp_path, launch_workers):
    """Checkpoints written by one backend resume on any other."""
    ckpt = tmp_path / "ckpt"
    partial = dict(list(JOBS.items())[:4])
    sweep_map(operator.mul, partial, checkpoint_dir=ckpt)

    expected_resumed = len(partial)
    for name, ex in backends(launch_workers).items():
        _, reg = obs.enable()
        try:
            out = sweep_map(operator.mul, JOBS, executor=ex,
                            checkpoint_dir=ckpt, resume=True)
            (_, resumed), = reg.get("sweep_jobs_resumed_total").samples()
        finally:
            obs.disable()
        assert out == EXPECTED, name
        assert resumed.value == expected_resumed, name
        expected_resumed = len(JOBS)  # each leg completes the checkpoints


def test_cluster_requeues_after_worker_kill(launch_workers):
    """Conformance under fire: one worker dies mid-sweep, results match."""
    doomed = launch_workers(1, REPRO_CLUSTER_KILL_AFTER="2")
    healthy = launch_workers(1)
    ex = ClusterExecutor(workers=doomed + healthy)
    _, reg = obs.enable()
    try:
        out = sweep_map(operator.mul, JOBS, executor=ex)
        (_, requeues), = reg.get("cluster_requeues_total").samples()
    finally:
        obs.disable()
    assert out == EXPECTED
    assert requeues.value >= 1


def test_cluster_survives_total_worker_loss(launch_workers):
    """Every worker dying degrades to in-process execution, same result."""
    doomed = launch_workers(2, REPRO_CLUSTER_KILL_AFTER="1")
    out = sweep_map(operator.mul, JOBS, executor=ClusterExecutor(workers=doomed))
    assert out == EXPECTED


def test_select_configuration_conformance(launch_workers):
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.clusters import ALL_CONFIGURATIONS
    from repro.core.estimate import select_configuration
    from repro.core.pipeline import characterize_app

    factories = {name: ALL_CONFIGURATIONS[name]
                 for name in ("configuration-A", "configuration-B")}
    model, _ = characterize_app(synthetic_program, 4, SyntheticParams(),
                                app_name="synthetic")
    choices = {name: select_configuration(model.phases, factories, executor=ex)
               for name, ex in backends(launch_workers).items()}
    ranks = {name: c.ranking() for name, c in choices.items()}
    assert ranks["serial"] == ranks["pool"] == ranks["cluster"]
    assert choices["serial"].best == choices["cluster"].best


def test_columns_cross_the_wire_as_trc(launch_workers):
    """characterize_bundles ships TraceColumns as binary .trc blobs and
    the extracted models are bit-identical to the serial path."""
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.core.pipeline import characterize_bundles
    from repro.simmpi.engine import IdealPlatform
    from repro.tracer.hooks import trace_run

    bundles = {f"b{i}": trace_run(synthetic_program, 4, IdealPlatform(),
                                  SyntheticParams())
               for i in range(2)}
    serial = characterize_bundles(bundles)
    cluster = characterize_bundles(
        bundles, executor=ClusterExecutor(workers=launch_workers(2)))
    for name in bundles:
        assert (json.dumps(serial[name].to_dict(), sort_keys=True)
                == json.dumps(cluster[name].to_dict(), sort_keys=True))


# -- wire format ---------------------------------------------------------------

def test_payload_externalizes_columns():
    """TraceColumns never enter the pickle stream: they ride as .trc."""
    from repro.tracer.columns import MAGIC, TraceColumns

    cols = TraceColumns(op_table=["open", "write"], rank=[0, 0],
                        file_id=[1, 1], op_code=[0, 1], offset=[0, 0],
                        tick=[1, 2], request_size=[0, 4096],
                        time=[0.4, 0.5], duration=[0.0, 0.1],
                        abs_offset=[0, 0])
    payload = wire.encode_payload({"a": cols, "b": cols, "n": 3})
    assert payload.count(MAGIC) == 1  # externalized once, deduped
    decoded = wire.decode_payload(payload)
    assert decoded["n"] == 3
    assert decoded["a"].request_size[1] == 4096
    assert list(decoded["a"].op_table) == ["open", "write"]
    # pickling the columns object the normal way embeds its class path;
    # the wire payload must not.
    assert b"TraceColumns" not in payload.split(MAGIC)[0]


def test_frame_buffer_reassembles_partial_feeds():
    frames = (wire.pack_frame(wire.JOB, b"x" * 11)
              + wire.pack_frame(wire.HEARTBEAT)
              + wire.pack_frame(wire.RESULT, b"yz"))
    buf = wire.FrameBuffer()
    seen = []
    for i in range(0, len(frames), 3):  # drip-feed 3 bytes at a time
        buf.feed(frames[i:i + 3])
        seen.extend(buf.frames())
    assert seen == [(wire.JOB, b"x" * 11), (wire.HEARTBEAT, b""),
                    (wire.RESULT, b"yz")]


def test_job_name_rides_outside_the_pickle():
    body = wire.pack_job("replay-abc123", b"\x00payload")
    name, payload = wire.unpack_job(body)
    assert name == "replay-abc123"
    assert payload == b"\x00payload"


def test_handshake_rejects_version_mismatch():
    good = wire.hello_payload("none", None)
    assert wire.check_hello(good) is None
    assert "protocol" in wire.check_hello({**good, "protocol": 99})
    assert "schema" in wire.check_hello({**good, "schema": -1})


# -- resolution ----------------------------------------------------------------

def test_resolve_executor_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert isinstance(resolve_executor(None, False), SerialExecutor)
    assert isinstance(resolve_executor(None, True), PoolExecutor)
    monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
    assert isinstance(resolve_executor(None, False), ClusterExecutor)
    assert isinstance(resolve_executor("serial", True), SerialExecutor)
    inst = PoolExecutor()
    assert resolve_executor(inst, False) is inst
    with pytest.raises(ValueError):
        resolve_executor("carrier-pigeon", False)


def test_resolve_executor_instance_beats_name_env_and_flag(monkeypatch):
    """An Executor instance wins outright, whatever else is set."""
    monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
    inst = SerialExecutor()
    assert resolve_executor(inst, True) is inst
    assert resolve_executor(inst, False) is inst


def test_resolve_executor_name_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
    assert isinstance(resolve_executor("pool", False), PoolExecutor)
    assert isinstance(resolve_executor("serial", True), SerialExecutor)


def test_resolve_executor_env_beats_parallel_flag(monkeypatch):
    """The env var overrides the legacy flag in *both* directions."""
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    assert isinstance(resolve_executor(None, True), SerialExecutor)
    monkeypatch.setenv("REPRO_EXECUTOR", "pool")
    assert isinstance(resolve_executor(None, False), PoolExecutor)


def test_resolve_executor_empty_env_falls_through(monkeypatch):
    """``REPRO_EXECUTOR=`` (set but empty) behaves like unset."""
    monkeypatch.setenv("REPRO_EXECUTOR", "")
    assert isinstance(resolve_executor(None, False), SerialExecutor)
    assert isinstance(resolve_executor(None, True), PoolExecutor)


@pytest.mark.parametrize("bad", ["Cluster", " pool ", "threads", "0"])
def test_resolve_executor_invalid_env_raises(monkeypatch, bad):
    """A bogus env value fails loudly instead of silently going serial."""
    monkeypatch.setenv("REPRO_EXECUTOR", bad)
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor(None, False)


def test_resolve_executor_invalid_name_beats_invalid_env(monkeypatch):
    """The error names the *argument*, not the env var, when both are bad."""
    monkeypatch.setenv("REPRO_EXECUTOR", "bogus-env")
    with pytest.raises(ValueError, match="carrier-pigeon"):
        resolve_executor("carrier-pigeon", False)


def test_single_job_sweep_stays_serial(monkeypatch):
    """A one-job sweep never pays fan-out cost, whatever the backend."""
    calls = []
    monkeypatch.setenv("REPRO_EXECUTOR", "cluster")
    out = sweep_map(operator.mul, {"only": (6, 7)})
    assert out == {"only": 42}
    assert not calls


# -- store plumbing ------------------------------------------------------------

def test_capture_store_records_encoded_writes():
    cap = CaptureStore()
    assert cap.put("ior", ("k", 1), {"bw": 1.5})
    hit, value = cap.get("ior", ("k", 1))
    assert hit and value == {"bw": 1.5}
    entries = cap.drain()
    assert len(entries) == 1
    cache, digest, blob = entries[0]
    assert cache == "ior" and isinstance(blob, bytes)
    assert cap.drain() == []  # drained entries don't reappear
    hit, value = cap.get("ior", ("k", 1))
    assert hit and value == {"bw": 1.5}  # still served from memory


def test_put_encoded_lands_in_disk_store(tmp_path):
    cap = CaptureStore()
    cap.put("ior", ("k", 2), [1, 2, 3])
    disk = ResultStore(tmp_path / "store")
    for cache, digest, blob in cap.drain():
        assert disk.put_encoded(cache, digest, blob)
    hit, value = disk.get("ior", ("k", 2))
    assert hit and value == [1, 2, 3]


def test_writeback_mode_populates_master_store(tmp_path, launch_workers):
    """Store-less workers return their writes; the master lands them."""
    from repro import store
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.clusters import ALL_CONFIGURATIONS
    from repro.core.estimate import select_configuration
    from repro.core.pipeline import characterize_app

    factories = {name: ALL_CONFIGURATIONS[name]
                 for name in ("configuration-A", "configuration-B")}
    model, _ = characterize_app(synthetic_program, 4, SyntheticParams(),
                                app_name="synthetic")
    rs = store.attach(tmp_path / "cache")
    try:
        select_configuration(
            model.phases, factories,
            executor=ClusterExecutor(workers=launch_workers(2),
                                     store_mode="writeback"))
        stats = rs.stats()
    finally:
        store.detach()
    assert stats.get("ior", {}).get("entries", 0) > 0

"""Model auditing against its source trace."""

from __future__ import annotations

import pytest

from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.apps.btio import BTIOParams, btio_program
from repro.core.model import IOModel
from repro.core.validate import audit, validate_model
from repro.tracer import trace_run

MB = 1024 * 1024


@pytest.fixture(scope="module")
def traced():
    bundle = trace_run(madbench2_program, 4, None, MADbench2Params(kpix=4))
    return IOModel.from_trace(bundle, "mb"), bundle


class TestCleanModels:
    def test_madbench_validates(self, traced):
        model, bundle = traced
        report = validate_model(model, bundle)
        assert report.ok, report.describe()
        assert "cleanly" in report.describe()

    def test_btio_validates(self):
        bundle = trace_run(btio_program, 4, None,
                           BTIOParams(cls="A", comm_events_per_step=2))
        model = IOModel.from_trace(bundle, "bt")
        assert validate_model(model, bundle).ok

    def test_audit_no_raise_on_clean(self, traced):
        model, bundle = traced
        audit(model, bundle, raise_on_error=True)  # must not raise


class TestDetection:
    def test_dropped_phase_detected(self, traced):
        model, bundle = traced
        broken = IOModel(app_name=model.app_name, np=model.np,
                         metadata=model.metadata, phases=model.phases[:-1])
        report = validate_model(broken, bundle)
        assert not report.ok
        assert any("bytes" in f.message for f in report.errors())

    def test_wrong_np_detected(self, traced):
        model, bundle = traced
        wrong = IOModel(app_name=model.app_name, np=model.np + 1,
                        metadata=model.metadata, phases=model.phases)
        report = validate_model(wrong, bundle)
        assert any("np=" in f.message for f in report.errors())

    def test_corrupted_offsetfn_detected(self, traced):
        from repro.core.offsetfn import OffsetFunction
        from fractions import Fraction
        from dataclasses import replace

        model, bundle = traced
        ph = model.phases[0]
        bad_op = replace(ph.ops[0], abs_offset_fn=OffsetFunction(
            slope=Fraction(1), intercept=Fraction(12345)))
        bad_phase = replace_phase(ph, ops=(bad_op,) + ph.ops[1:])
        broken = IOModel(app_name=model.app_name, np=model.np,
                         metadata=model.metadata,
                         phases=[bad_phase] + model.phases[1:])
        report = validate_model(broken, bundle)
        assert any("f(initOffset)" in f.message for f in report.errors())

    def test_audit_raises_on_error(self, traced):
        model, bundle = traced
        broken = IOModel(app_name=model.app_name, np=model.np,
                         metadata=model.metadata, phases=model.phases[:-1])
        with pytest.raises(ValueError):
            audit(broken, bundle, raise_on_error=True)


def replace_phase(ph, **kw):
    from repro.core.phases import Phase

    fields = dict(
        phase_id=ph.phase_id, file_group=ph.file_group, rep=ph.rep,
        ops=ph.ops, ranks=ph.ranks, tick=ph.tick, first_time=ph.first_time,
        duration=ph.duration, unique_file=ph.unique_file,
        file_ids=ph.file_ids)
    fields.update(kw)
    return Phase(**fields)

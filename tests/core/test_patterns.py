"""Spatial/temporal pattern exports (figure series)."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.core.patterns import (
    ascii_plot,
    global_access_pattern,
    spatial_pattern,
    temporal_pattern,
    to_csv,
)
from repro.tracer import trace_run

MB = 1024 * 1024


def app(ctx):
    fh = ctx.file_open("data")
    for k in range(2):
        ctx.allreduce(1)
        ctx.allreduce(1)
        fh.write_at_all(ctx.rank * 2 * MB + k * MB, MB)
    fh.read_at_all(ctx.rank * 2 * MB, MB)
    fh.close()


@pytest.fixture(scope="module")
def traced():
    bundle = trace_run(app, 4)
    model = IOModel.from_trace(bundle, app_name="toy")
    return bundle, model


class TestGlobalPattern:
    def test_one_point_per_record(self, traced):
        bundle, model = traced
        points = global_access_pattern(bundle.records, model)
        assert len(points) == len(bundle.records)

    def test_points_tagged_with_phases(self, traced):
        bundle, model = traced
        points = global_access_pattern(bundle.records, model)
        tagged = [p for p in points if p.phase_id is not None]
        assert len(tagged) == len(points)
        assert {p.phase_id for p in tagged} == \
            {ph.phase_id for ph in model.phases}

    def test_points_sorted_by_tick(self, traced):
        bundle, model = traced
        points = global_access_pattern(bundle.records, model)
        assert all(a.tick <= b.tick for a, b in zip(points, points[1:]))

    def test_without_model_phase_is_none(self, traced):
        bundle, _ = traced
        points = global_access_pattern(bundle.records)
        assert all(p.phase_id is None for p in points)


class TestTableViews:
    def test_spatial_rows(self, traced):
        _, model = traced
        rows = spatial_pattern(model)
        assert len(rows) == sum(len(ph.ops) for ph in model.phases)
        assert all("init_offset" in r and "request_size" in r for r in rows)

    def test_temporal_rows_ordered(self, traced):
        _, model = traced
        rows = temporal_pattern(model)
        assert [r["phase"] for r in rows] == \
            [ph.phase_id for ph in model.phases]


class TestExports:
    def test_csv_shape(self, traced):
        bundle, model = traced
        points = global_access_pattern(bundle.records, model)
        csv = to_csv(points)
        lines = csv.strip().splitlines()
        assert lines[0] == "tick,rank,offset,request_size,kind,phase"
        assert len(lines) == len(points) + 1

    def test_ascii_plot_renders(self, traced):
        bundle, model = traced
        points = global_access_pattern(bundle.records, model)
        art = ascii_plot(points, width=40, height=10)
        assert "tick" in art
        assert any(c in art for c in "WR*")

    def test_ascii_plot_empty(self):
        assert "no I/O" in ascii_plot([])

"""Phase -> IOR replication mapping (section III-B)."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.core.replication import (
    STEADY_STATE_MIN_BLOCK,
    replicate_model,
    replication_for_phase,
)
from repro.tracer import trace_run

MB = 1024 * 1024


def collective_app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 8 * MB, 8 * MB)
    fh.close()


def unique_app(ctx):
    fh = ctx.file_open("data", unique=True)
    fh.write_at(0, 4 * MB)
    fh.close()


def mixed_app(ctx):
    fh = ctx.file_open("data")
    base = ctx.rank * 64 * MB
    fh.seek(base)
    for k in range(4):
        fh.seek(base + k * MB)
        fh.write(MB)
        fh.seek(base + 32 * MB + k * MB)
        fh.read(MB)
    fh.close()


def phase_of(app, np_=4):
    model = IOModel.from_trace(trace_run(app, np_))
    return model.phases[0]


class TestMapping:
    def test_paper_parameters(self):
        ph = phase_of(collective_app)
        repl = replication_for_phase(ph, min_block_bytes=0)
        (params,) = repl.runs
        assert params.segments == 1  # s = 1
        assert params.transfer_size == 8 * MB  # t = rs
        assert params.block_size == ph.rep * 8 * MB  # b = rep * rs
        assert params.np == ph.np  # NP = np(ph)
        assert params.collective  # -c
        assert not params.file_per_process

    def test_unique_file_sets_F(self):
        ph = phase_of(unique_app)
        repl = replication_for_phase(ph, min_block_bytes=0)
        assert repl.runs[0].file_per_process  # -F
        assert not repl.runs[0].collective

    def test_mixed_phase_gets_one_run_per_kind(self):
        ph = phase_of(mixed_app)
        assert ph.op_label == "W-R"
        repl = replication_for_phase(ph, min_block_bytes=0)
        assert len(repl.runs) == 2
        assert repl.kinds == ("write", "read")
        assert all(len(r.kinds) == 1 for r in repl.runs)

    def test_steady_state_inflation(self):
        ph = phase_of(collective_app)
        repl = replication_for_phase(ph)  # default min block
        (params,) = repl.runs
        assert params.block_size >= STEADY_STATE_MIN_BLOCK
        assert params.block_size % params.transfer_size == 0

    def test_inflation_skipped_for_heavy_phases(self):
        ph = phase_of(collective_app)
        repl = replication_for_phase(ph, min_block_bytes=4 * MB)
        assert repl.runs[0].block_size == ph.rep * 8 * MB

    def test_weight_carried(self):
        ph = phase_of(collective_app)
        repl = replication_for_phase(ph)
        assert repl.weight == ph.weight
        assert repl.phase_id == ph.phase_id

    def test_replicate_model_order(self):
        model = IOModel.from_trace(trace_run(collective_app, 4))
        repls = replicate_model(model.phases)
        assert [r.phase_id for r in repls] == \
            [ph.phase_id for ph in model.phases]

    def test_command_line_rendering(self):
        ph = phase_of(collective_app)
        (params,) = replication_for_phase(ph).runs
        cmd = params.command_line()
        assert cmd.startswith("ior -a MPIIO")
        assert "-c" in cmd and "-s 1" in cmd and "-w" in cmd

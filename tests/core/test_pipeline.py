"""End-to-end pipeline: characterize -> estimate -> measure -> evaluate."""

from __future__ import annotations

import pytest

from repro.core.pipeline import (
    characterize_app,
    characterize_peaks_for,
    estimate_on,
    evaluate,
    full_study,
    measure_on,
)

from tests.conftest import make_nfs_cluster, make_pvfs_cluster

MB = 1024 * 1024


def app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 24 * MB, 24 * MB)
    fh.read_at_all(ctx.rank * 24 * MB, 24 * MB)
    fh.close()
    ctx.barrier()


class TestStages:
    def test_characterize_is_platform_independent(self):
        m1, _ = characterize_app(app, 4, app_name="toy")
        m2, _ = characterize_app(app, 4, app_name="toy",
                                 platform=make_nfs_cluster())
        assert m1.nphases == m2.nphases
        assert [p.weight for p in m1.phases] == [p.weight for p in m2.phases]
        for a, b in zip(m1.phases, m2.phases):
            assert a.ops[0].abs_offset_fn(3) == b.ops[0].abs_offset_fn(3)

    def test_estimate_and_measure_join(self):
        model, _ = characterize_app(app, 4, app_name="toy")
        est = estimate_on(model, make_nfs_cluster, config_name="nfs")
        measure, mmodel = measure_on(app, 4, cluster_factory=make_nfs_cluster,
                                     app_name="toy")
        peaks = characterize_peaks_for(make_nfs_cluster)
        ev = evaluate(mmodel, est, measure, peaks=peaks)
        assert len(ev.rows) == model.nphases
        for row in ev.rows:
            assert row.bw_md_mb_s > 0 and row.bw_ch_mb_s > 0
            assert 0 < row.usage_pct <= 100
            assert row.error_rel_pct < 50
        assert ev.total_time_md > 0 and ev.total_time_ch > 0

    def test_evaluation_row_requires_peaks_for_usage(self):
        model, _ = characterize_app(app, 4)
        est = estimate_on(model, make_nfs_cluster)
        measure, mmodel = measure_on(app, 4, cluster_factory=make_nfs_cluster)
        ev = evaluate(mmodel, est, measure)  # no peaks
        with pytest.raises(ValueError):
            _ = ev.rows[0].usage_pct


class TestFullStudy:
    def test_full_study_selects_and_evaluates(self):
        study = full_study(
            app, 4,
            cluster_factories={
                "nfs": make_nfs_cluster,
                "pvfs": lambda: make_pvfs_cluster(n_ions=3),
            },
            app_name="toy",
            measure_configs=("nfs",),
        )
        assert study["model"].nphases >= 2
        assert set(study["estimates"]) == {"nfs", "pvfs"}
        assert set(study["evaluations"]) == {"nfs"}
        assert study["selection"]["best"] in ("nfs", "pvfs")
        totals = study["selection"]["totals"]
        assert totals[study["selection"]["best"]] == min(totals.values())

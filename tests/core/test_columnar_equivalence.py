"""Columnar vs. per-record characterization: identical results.

The columnar kernels (``extract_laps_columns``, ``fit_offsets_arrays``,
``IOModel.from_columns``) are optimizations, not approximations: on any
trace they must produce the same ``LAPEntry`` lists, the same phase
weights and the same offset functions as the record-by-record reference
implementations -- under both the numpy and the pure-Python backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.apps.roms import ROMSParams, roms_program
from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.core.lap import extract_laps, extract_laps_columns
from repro.core.model import IOModel, models_equivalent
from repro.core.offsetfn import fit_offsets, fit_offsets_arrays
from repro.tracer.columns import TraceColumns
from repro.tracer.hooks import trace_run
from repro.tracer.tracefile import TraceRecord

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

BACKENDS = pytest.mark.parametrize(
    "backend",
    [pytest.param("numpy", marks=pytest.mark.skipif(
        not HAVE_NUMPY, reason="numpy not installed")),
     "python"])

OPS = ["MPI_File_write_at_all", "MPI_File_read_at_all", "MPI_File_write_at"]


def assert_extraction_matches(records, backend):
    cols = TraceColumns.from_records(records, backend=backend)
    assert extract_laps_columns(cols) == extract_laps(records)


# -- randomized traces --------------------------------------------------------

row = st.tuples(
    st.integers(0, 3),            # rank
    st.integers(0, 2),            # file_id
    st.integers(0, len(OPS) - 1),  # op
    st.integers(0, 63),           # offset
    st.integers(1, 3),            # tick delta
    st.sampled_from([4096, 65536]),
)


@BACKENDS
@given(st.lists(row, max_size=60))
@settings(max_examples=60, deadline=None)
def test_random_traces(backend, rows):
    records, tick = [], {}
    for i, (rank, fid, op, off, dt, rs) in enumerate(rows):
        tick[rank] = tick.get(rank, 0) + dt
        records.append(TraceRecord(rank, fid, OPS[op], off * 8, tick[rank],
                                   rs, 0.01 * i, 0.001, off * 64))
    assert_extraction_matches(records, backend)


@BACKENDS
@given(st.integers(2, 40), st.integers(1, 3), st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_tandem_runs(backend, nrep, unit, noise):
    """Long repetition runs with every unit length, plus trailing noise."""
    records, tick, off = [], 0, 0
    for k in range(nrep):
        for j in range(unit):
            tick += 1
            records.append(TraceRecord(0, 0, OPS[j], off + j * 1000, tick,
                                       4096 * (j + 1), 0.01 * tick, 1e-4,
                                       (off + j * 1000) * 4))
        off += 16
    for j in range(noise):
        tick += 1
        records.append(TraceRecord(0, 0, OPS[j % 3], j * 7919, tick, 512,
                                   0.01 * tick, 1e-4, j * 7919 * 4))
    assert_extraction_matches(records, backend)


@BACKENDS
def test_zero_events(backend):
    assert_extraction_matches([], backend)


@BACKENDS
def test_single_rank_many_bursts(backend):
    records = []
    for burst in range(50):
        base_tick = burst * 100
        for j in range(4):
            records.append(TraceRecord(0, 0, "MPI_File_write_at",
                                       j * 64, base_tick + j, 4096,
                                       0.1 * burst + 0.001 * j, 1e-4,
                                       j * 512))
    assert_extraction_matches(records, backend)


@BACKENDS
def test_non_stationary_offsets(backend):
    """Displacement changes midway: the run must split exactly alike."""
    offs = [0, 16, 32, 48, 64, 100, 200, 400, 800]
    records = [TraceRecord(0, 0, "MPI_File_write_at", o, i + 1, 4096,
                           0.01 * i, 1e-4, o * 8)
               for i, o in enumerate(offs)]
    assert_extraction_matches(records, backend)


# -- offset-function fits -----------------------------------------------------

pair_lists = st.lists(
    st.tuples(st.integers(0, 500), st.integers(-10**12, 10**12)),
    min_size=1, max_size=40,
    unique_by=lambda p: p[0])


@given(pair_lists)
@settings(max_examples=80, deadline=None)
def test_fit_offsets_arrays_matches_fit_offsets(pairs):
    ranks = [r for r, _ in pairs]
    offs = [o for _, o in pairs]
    assert fit_offsets_arrays(ranks, offs) == fit_offsets(pairs)


@given(st.integers(0, 2**40), st.integers(-2**40, 2**40), st.integers(2, 64))
@settings(max_examples=50, deadline=None)
def test_fit_offsets_arrays_recovers_exact_line(intercept, slope, nranks):
    ranks = list(range(nranks))
    offs = [slope * r + intercept for r in ranks]
    fn = fit_offsets_arrays(ranks, offs)
    assert fn.is_linear
    assert [fn(r) for r in ranks] == offs


def test_fit_offsets_arrays_huge_values_fall_back_exactly():
    # products beyond int64: the guard must route to exact Python ints
    ranks = [0, 1, 2, 3]
    offs = [0, 2**70, 2**71, 3 * 2**70]
    fn = fit_offsets_arrays(ranks, offs)
    assert fn == fit_offsets(list(zip(ranks, offs)))
    assert fn(3) == 3 * 2**70


# -- seed applications: identical abstract models -----------------------------

SEED_APPS = [
    ("madbench2", madbench2_program, 4,
     (MADbench2Params(kpix=1, nbin=4, busy_seconds=0.01),)),
    ("btio", btio_program, 4, (BTIOParams(cls="A"),)),
    ("synthetic", synthetic_program, 8, (SyntheticParams(),)),
    ("roms", roms_program, 4, (ROMSParams(nsteps=8, history_every=4),)),
]


@pytest.mark.parametrize("name,program,np_,args",
                         SEED_APPS, ids=[a[0] for a in SEED_APPS])
@BACKENDS
def test_seed_app_models_identical(name, program, np_, args, backend,
                                   monkeypatch):
    if backend == "python":
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    bundle = trace_run(program, np_, None, *args)
    ref = IOModel.from_trace(bundle, app_name=name, method="records")
    cols = TraceColumns.from_records(bundle.records, backend=backend)
    got = IOModel.from_columns(cols, bundle.metadata, bundle.nprocs,
                               app_name=name)
    assert got.to_dict() == ref.to_dict()
    assert models_equivalent(got, ref)

"""Memoization layer: fingerprints, cache hits, stats and obs counters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.apps.ior import IORParams, run_ior
from repro.apps.iozone import IOzoneParams, run_iozone
from repro.clusters import configuration_a, configuration_b
from repro.core import cache as simcache

from tests.conftest import make_nfs_cluster, make_pvfs_cluster

MB = 1024 * 1024


class TestFingerprints:
    def test_same_structure_same_fingerprint(self):
        assert make_nfs_cluster().fingerprint() == make_nfs_cluster().fingerprint()
        assert make_pvfs_cluster().fingerprint() == make_pvfs_cluster().fingerprint()

    def test_names_do_not_matter(self):
        b = configuration_b()
        fps = {ion.fingerprint() for ion in b.globalfs.ions}
        names = {ion.name for ion in b.globalfs.ions}
        assert len(names) == len(b.globalfs.ions)  # distinct names...
        assert len(fps) == 1  # ...same structural identity

    def test_parameters_do_matter(self):
        assert (make_nfs_cluster(cache_mb=64).fingerprint()
                != make_nfs_cluster(cache_mb=128).fingerprint())
        assert (make_nfs_cluster(n_disks=5).fingerprint()
                != make_nfs_cluster(n_disks=4).fingerprint())
        assert make_nfs_cluster().fingerprint() != make_pvfs_cluster().fingerprint()

    def test_factory_fingerprint_memoized(self):
        fp1 = simcache.factory_fingerprint(configuration_a)
        fp2 = simcache.factory_fingerprint(configuration_a)
        assert fp1 == fp2 == configuration_a().fingerprint()

    def test_platform_without_fingerprint_opts_out(self):
        class Bare:
            pass

        assert simcache.platform_fingerprint(Bare()) is None


class TestRunIorMemo:
    def test_hit_returns_equal_result(self):
        params = IORParams(np=4, block_size=4 * MB, transfer_size=MB)
        first = run_ior(make_nfs_cluster(), params)
        stats0 = simcache.stats()["ior"]
        second = run_ior(make_nfs_cluster(), params)
        stats1 = simcache.stats()["ior"]
        assert stats1["hits"] == stats0["hits"] + 1
        assert second.bw_mb_s == first.bw_mb_s
        assert second.times == first.times
        # Defensive copy: mutating the hit must not poison the cache.
        second.bw_mb_s["write"] = -1.0
        third = run_ior(make_nfs_cluster(), params)
        assert third.bw_mb_s == first.bw_mb_s

    def test_different_params_miss(self):
        run_ior(make_nfs_cluster(), IORParams(np=4, block_size=4 * MB,
                                              transfer_size=MB))
        before = simcache.stats()["ior"]
        run_ior(make_nfs_cluster(), IORParams(np=4, block_size=4 * MB,
                                              transfer_size=2 * MB))
        after = simcache.stats()["ior"]
        assert after["misses"] == before["misses"] + 1

    def test_disable_bypasses(self):
        params = IORParams(np=4, block_size=4 * MB, transfer_size=MB)
        run_ior(make_nfs_cluster(), params)
        simcache.disable()
        try:
            run_ior(make_nfs_cluster(), params)
            assert simcache.stats()["ior"]["entries"] == 0
        finally:
            simcache.enable()


class TestRunIozoneMemo:
    def test_configuration_b_ions_share_one_characterization(self):
        b = configuration_b()
        params = IOzoneParams(file_size_mb=64)
        results = [run_iozone(ion, params) for ion in b.globalfs.ions]
        st = simcache.stats()["iozone"]
        assert st["misses"] == 1
        assert st["hits"] == len(b.globalfs.ions) - 1
        # The hit keeps the asking node's name but shares the grid.
        assert {r.ion_name for r in results} == {i.name for i in b.globalfs.ions}
        assert results[0].grid == results[1].grid == results[2].grid


class TestObsCounters:
    def test_cache_counters_exported(self):
        params = IORParams(np=4, block_size=4 * MB, transfer_size=MB)
        _, registry = obs.enable()
        try:
            run_ior(make_nfs_cluster(), params)
            run_ior(make_nfs_cluster(), params)
            hits = registry.get("cache_hits_total").labels(cache="ior").value
            misses = registry.get("cache_misses_total").labels(cache="ior").value
            assert hits == 1.0
            assert misses == 1.0
        finally:
            obs.disable()


class TestSteadyStateClosure:
    def test_closure_matches_full_simulation(self):
        ion = configuration_a().globalfs.ions[0]
        fast = run_iozone(ion, IOzoneParams(file_size_mb=256))
        simcache.clear_all()
        ion2 = configuration_a().globalfs.ions[0]
        slow = run_iozone(ion2, IOzoneParams(file_size_mb=256,
                                             steady_state_ops=0))
        for key, bw_slow in slow.grid.items():
            bw_fast = fast.grid[key]
            assert bw_fast == pytest.approx(bw_slow, rel=1e-9), key

"""sweep_map resilience: error policy, retry, checkpoints, resume."""

from __future__ import annotations

import pickle

import pytest

from repro.core.sweep import (
    JobFailure,
    SweepJobError,
    checkpoint_path,
    sweep_map,
)
from repro.faults import TransientFault
from repro.faults.resilience import RetryPolicy


def double(x):
    return 2 * x


def boom(x):
    raise RuntimeError(f"boom on {x}")


_FLAKY_CALLS: dict[str, int] = {}


def flaky_once(key):
    """Module-level (picklable): fails with TransientFault on first call."""
    n = _FLAKY_CALLS.get(key, 0)
    _FLAKY_CALLS[key] = n + 1
    if n == 0:
        raise TransientFault(key, retry_at=1.0)
    return f"recovered:{key}"


def test_job_failure_is_falsy():
    f = JobFailure(name="j", error="RuntimeError('x')")
    assert not f
    assert [v for v in [f, "real"] if v] == ["real"]


def test_raise_on_error_names_job_and_embeds_traceback():
    with pytest.raises(SweepJobError) as ei:
        sweep_map(boom, {"a": (1,)})
    assert ei.value.job == "a"
    assert "boom on 1" in str(ei.value)
    assert "RuntimeError" in ei.value.job_traceback  # the job's traceback


def test_collect_failures_without_raising():
    results = sweep_map(boom if False else (lambda x: boom(x) if x == 2 else x),
                        {"a": (1,), "b": (2,), "c": (3,)},
                        raise_on_error=False)
    assert results["a"] == 1
    assert isinstance(results["b"], JobFailure)
    assert "boom on 2" in results["b"].traceback
    assert results["c"] == 3


def test_retry_policy_recovers_transient_jobs():
    _FLAKY_CALLS.clear()
    results = sweep_map(flaky_once, {"j1": ("j1",), "j2": ("j2",)},
                        retry=RetryPolicy(max_attempts=2, backoff_s=0.0))
    assert results == {"j1": "recovered:j1", "j2": "recovered:j2"}


def test_without_retry_transient_faults_fail_the_job():
    _FLAKY_CALLS.clear()
    with pytest.raises(SweepJobError):
        sweep_map(flaky_once, {"j1": ("j1",)})


def test_checkpoints_written_and_resumed(tmp_path):
    ckpt = tmp_path / "ck"
    first = sweep_map(double, {"a": (1,), "b": (2,)}, checkpoint_dir=ckpt)
    assert first == {"a": 2, "b": 4}
    assert checkpoint_path(ckpt, "a").exists()

    # Tamper with a checkpoint: resume must trust it (proving no rerun).
    with checkpoint_path(ckpt, "a").open("wb") as f:
        pickle.dump("sentinel", f)
    resumed = sweep_map(double, {"a": (1,), "b": (2,), "c": (3,)},
                        checkpoint_dir=ckpt, resume=True)
    assert resumed == {"a": "sentinel", "b": 4, "c": 6}


def test_resume_requires_checkpoint_dir():
    with pytest.raises(ValueError, match="needs a checkpoint_dir"):
        sweep_map(double, {"a": (1,)}, resume=True)


def test_checkpoint_names_are_distinct_and_safe(tmp_path):
    a = checkpoint_path(tmp_path, "config/A with spaces")
    b = checkpoint_path(tmp_path, "config/A_with_spaces")
    assert a.name != b.name  # hash disambiguates collapsed characters
    assert "/" not in a.name.replace(str(tmp_path), "")
    assert a.suffix == ".ckpt"


def test_failed_jobs_are_not_checkpointed(tmp_path):
    ckpt = tmp_path / "ck"
    results = sweep_map(lambda x: boom(x) if x == 1 else x,
                        {"bad": (1,), "good": (2,)},
                        raise_on_error=False, checkpoint_dir=ckpt)
    assert isinstance(results["bad"], JobFailure)
    assert not checkpoint_path(ckpt, "bad").exists()
    assert checkpoint_path(ckpt, "good").exists()
    # a later resume retries the failed job
    retried = sweep_map(double, {"bad": (1,), "good": (2,)},
                        checkpoint_dir=ckpt, resume=True)
    assert retried["bad"] == 2
    assert retried["good"] == 2  # from the checkpoint, not double()


def test_parallel_checkpoint_resume_matches_serial(tmp_path):
    jobs = {f"j{i}": (i,) for i in range(4)}
    serial = sweep_map(double, jobs)
    ckpt = tmp_path / "ck"
    parallel = sweep_map(double, jobs, parallel=True, max_workers=2,
                         checkpoint_dir=ckpt)
    assert parallel == serial
    resumed = sweep_map(double, jobs, parallel=True, max_workers=2,
                        checkpoint_dir=ckpt, resume=True)
    assert resumed == serial


def test_parallel_timeout_records_timed_out_failure():
    import time

    jobs = {"slow": (10.0,), "fast": (0.0,)}
    results = sweep_map(time.sleep, jobs, parallel=True, max_workers=2,
                        timeout_s=0.5, raise_on_error=False)
    assert isinstance(results["slow"], JobFailure)
    assert results["slow"].timed_out


def test_insertion_order_preserved_with_resume(tmp_path):
    ckpt = tmp_path / "ck"
    jobs = {"z": (1,), "a": (2,), "m": (3,)}
    sweep_map(double, {"a": (2,)}, checkpoint_dir=ckpt)
    results = sweep_map(double, jobs, checkpoint_dir=ckpt, resume=True)
    assert list(results) == ["z", "a", "m"]

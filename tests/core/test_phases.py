"""Phase identification: similarity, weights, subsets, merging."""

from __future__ import annotations

import pytest

from repro.core.lap import extract_laps
from repro.core.phases import (
    Phase,
    file_groups_from_metadata,
    identify_phases,
    merge_adjacent_phases,
)
from repro.tracer.metadata import AppMetadata, FileMetadataSummary
from repro.tracer.tracefile import TraceRecord


def rec(rank, op, offset, tick, rs=100, fid=0, dur=0.01):
    return TraceRecord(rank=rank, file_id=fid, op=op, offset=offset,
                       tick=tick, request_size=rs, time=float(tick),
                       duration=dur, abs_offset=offset)


def spmd_records(np_=4, nrep=3, rs=100, op="MPI_File_write_at_all",
                 tick0=1, adjacent=True):
    """All ranks do nrep ops at per-rank offsets."""
    out = []
    for r in range(np_):
        tick = tick0
        for k in range(nrep):
            out.append(rec(r, op, r * nrep * rs + k * rs, tick, rs))
            tick += 1 if adjacent else 50
    return out


class TestIdentification:
    def test_single_phase_all_ranks(self):
        entries = extract_laps(spmd_records(np_=4, nrep=5))
        phases = identify_phases(entries)
        assert len(phases) == 1
        ph = phases[0]
        assert ph.np == 4 and ph.rep == 5
        assert ph.ranks == (0, 1, 2, 3)
        assert ph.weight == 4 * 5 * 100

    def test_gap_separated_phases(self):
        entries = extract_laps(spmd_records(np_=2, nrep=3, adjacent=False))
        phases = identify_phases(entries)
        assert len(phases) == 3
        assert all(ph.np == 2 and ph.rep == 1 for ph in phases)

    def test_offset_function_fit(self):
        entries = extract_laps(spmd_records(np_=4, nrep=2, rs=10))
        (ph,) = identify_phases(entries)
        fn = ph.ops[0].offset_fn
        assert fn.is_linear and fn.slope == 20  # nrep * rs per rank

    def test_tick_tolerance_respected(self):
        records = [rec(0, "MPI_File_write", 0, tick=1),
                   rec(1, "MPI_File_write", 100, tick=500)]
        entries = extract_laps(records)
        phases = identify_phases(entries, tick_tol=16)
        assert len(phases) == 2  # too far apart in logical time
        phases = identify_phases(entries, tick_tol=1000)
        assert len(phases) == 1

    def test_different_request_sizes_never_merge(self):
        records = [rec(0, "MPI_File_write", 0, 1, rs=100),
                   rec(1, "MPI_File_write", 0, 1, rs=200)]
        phases = identify_phases(extract_laps(records))
        assert len(phases) == 2

    def test_subset_of_ranks_forms_phase(self):
        """Gangs: only half the ranks do a pattern."""
        records = [rec(r, "MPI_File_write", r * 100, 1) for r in (0, 2)]
        records += [rec(r, "MPI_File_read", r * 100, 1) for r in (1, 3)]
        phases = identify_phases(extract_laps(records))
        assert len(phases) == 2
        by_label = {ph.op_label: ph for ph in phases}
        assert by_label["W"].ranks == (0, 2)
        assert by_label["R"].ranks == (1, 3)

    def test_phase_ids_ordered_by_time(self):
        records = [rec(0, "MPI_File_write", 0, tick=100),
                   rec(0, "MPI_File_read", 0, tick=1)]
        # Execution order: read (t=1) then write (t=100).
        records.sort(key=lambda r: r.tick)
        phases = identify_phases(extract_laps(records))
        assert phases[0].op_label == "R" and phases[0].phase_id == 1
        assert phases[1].op_label == "W" and phases[1].phase_id == 2

    def test_one_entry_per_rank_per_phase(self):
        """A rank repeating the same burst twice yields two phases."""
        records = []
        for r in range(2):
            records.append(rec(r, "MPI_File_write", 0, tick=1))
            records.append(rec(r, "MPI_File_write", 0, tick=10))
        phases = identify_phases(extract_laps(records), tick_tol=100)
        assert len(phases) == 2
        assert all(ph.np == 2 for ph in phases)


class TestFileGroups:
    def _meta(self):
        return AppMetadata(files=[
            FileMetadataSummary("out.0", 0, ("explicit",), False, True,
                                "sequential", "unique", 1, 0, 1),
            FileMetadataSummary("out.1", 1, ("explicit",), False, True,
                                "sequential", "unique", 1, 0, 1),
            FileMetadataSummary("shared.dat", 2, ("explicit",), True, False,
                                "sequential", "shared", 1, 0, 2),
        ])

    def test_unique_files_collapse_to_base(self):
        groups = file_groups_from_metadata(self._meta())
        assert groups[0] == ("out", True)
        assert groups[1] == ("out", True)
        assert groups[2] == ("shared.dat", False)

    def test_unique_files_grouped_into_one_phase(self):
        records = [rec(0, "MPI_File_write_at", 0, 1, fid=0),
                   rec(1, "MPI_File_write_at", 0, 1, fid=1)]
        groups = file_groups_from_metadata(self._meta())
        phases = identify_phases(extract_laps(records), file_groups=groups)
        assert len(phases) == 1
        assert phases[0].unique_file
        assert phases[0].file_group == "out"
        assert phases[0].file_ids == (0, 1)


class TestProperties:
    def test_weight_and_labels(self):
        entries = extract_laps(spmd_records(np_=8, nrep=4, rs=1000))
        (ph,) = identify_phases(entries)
        assert ph.weight == 8 * 4 * 1000
        assert ph.op_label == "W"
        assert ph.n_operations == 32
        assert ph.collective  # write_at_all
        assert ph.request_size == 1000

    def test_mixed_phase_label(self):
        base = []
        for r in range(2):
            ops = []
            for k in range(4):
                ops.append(rec(r, "MPI_File_write", k * 10, 1 + 2 * k))
                ops.append(rec(r, "MPI_File_read", 100 + k * 10, 2 + 2 * k))
            base += ops
        phases = identify_phases(extract_laps(base))
        assert any(ph.op_label == "W-R" for ph in phases)


class TestMergeAdjacent:
    def test_btio_style_grouping(self):
        entries = extract_laps(spmd_records(np_=2, nrep=6, adjacent=False))
        phases = identify_phases(entries)
        assert len(phases) == 6
        merged = merge_adjacent_phases(phases)
        assert len(merged) == 1
        assert merged[0].rep == 6
        assert merged[0].weight == sum(ph.weight for ph in phases)

    def test_different_signatures_not_merged(self):
        records = [rec(0, "MPI_File_write", 0, 1),
                   rec(0, "MPI_File_read", 0, 100)]
        phases = identify_phases(extract_laps(records))
        assert len(merge_adjacent_phases(phases)) == 2

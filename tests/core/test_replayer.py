"""Phase-faithful replayer (the paper's proposed multi-op benchmark)."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.core.replayer import estimate_phase_replayed, replay_phase
from repro.tracer import trace_run

from tests.conftest import make_nfs_cluster

MB = 1024 * 1024


def mixed_app(ctx):
    """An app with a MADbench-W-style mixed phase."""
    fh = ctx.file_open("data")
    base = ctx.rank * 64 * MB
    for k in range(4):
        fh.seek(base + k * 4 * MB)
        fh.write(4 * MB)
        fh.seek(base + 32 * MB + k * 4 * MB)
        fh.read(4 * MB)
    fh.close()


def collective_app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 8 * MB, 8 * MB)
    fh.close()


class TestReplayPhase:
    def test_mixed_phase_replays_both_kinds(self):
        model = IOModel.from_trace(trace_run(mixed_app, 4))
        phase = model.phases[0]
        assert phase.op_label == "W-R"
        result = replay_phase(phase, make_nfs_cluster())
        assert result.bw_mb_s > 0
        assert set(result.bw_by_kind) == {"write", "read"}

    def test_collective_phase(self):
        model = IOModel.from_trace(trace_run(collective_app, 4))
        result = replay_phase(model.phases[0], make_nfs_cluster(),
                              min_repetitions=4)
        assert result.bw_mb_s > 0
        assert result.elapsed > 0

    def test_min_repetitions_inflate(self):
        model = IOModel.from_trace(trace_run(collective_app, 4))
        short = replay_phase(model.phases[0], make_nfs_cluster(),
                             min_repetitions=1)
        long = replay_phase(model.phases[0], make_nfs_cluster(),
                            min_repetitions=8)
        assert long.elapsed > short.elapsed

    def test_replay_matches_application_closely(self):
        """The replayer's point: mixed phases tracked within a few %."""
        cluster = make_nfs_cluster()
        model = IOModel.from_trace(trace_run(mixed_app, 4, cluster))
        phase = model.phases[0]
        measured_bw = phase.weight / MB / phase.duration
        result = replay_phase(phase, make_nfs_cluster(), min_repetitions=4)
        err = abs(result.bw_mb_s - measured_bw) / measured_bw
        assert err < 0.35

    def test_estimate_phase_replayed(self):
        model = IOModel.from_trace(trace_run(mixed_app, 4))
        t = estimate_phase_replayed(model.phases[0], make_nfs_cluster)
        assert t > 0

"""Model rescaling across process counts."""

from __future__ import annotations

import pytest

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.core.model import IOModel, models_equivalent
from repro.core.rescale import RescaleError, rescale_model
from repro.tracer import trace_run

MB = 1024 * 1024


@pytest.fixture(scope="module")
def btio4():
    params = BTIOParams(cls="A", comm_events_per_step=2)
    return IOModel.from_trace(
        trace_run(btio_program, 4, None, params), "btio")


class TestBTIO:
    def test_upscale_matches_real_model(self, btio4):
        params = BTIOParams(cls="A", comm_events_per_step=2)
        real16 = IOModel.from_trace(
            trace_run(btio_program, 16, None, params), "btio")
        predicted = rescale_model(btio4, 16, etype_size=40)
        assert models_equivalent(real16, predicted)

    def test_weight_preserved(self, btio4):
        predicted = rescale_model(btio4, 16, etype_size=40)
        assert predicted.total_weight == btio4.total_weight
        assert predicted.np == 16
        assert all(ph.np == 16 for ph in predicted.phases)

    def test_round_trip(self, btio4):
        back = rescale_model(rescale_model(btio4, 16, etype_size=40), 4,
                             etype_size=40)
        assert models_equivalent(btio4, back)


class TestMADbench:
    def test_both_directions(self):
        p = MADbench2Params(kpix=4)
        m4 = IOModel.from_trace(
            trace_run(madbench2_program, 4, None, p), "mb")
        m16 = IOModel.from_trace(
            trace_run(madbench2_program, 16, None, p), "mb")
        assert models_equivalent(m16, rescale_model(m4, 16, etype_size=1))
        assert models_equivalent(m4, rescale_model(m16, 4, etype_size=1))


class TestValidation:
    def test_nonpositive_np_rejected(self, btio4):
        with pytest.raises(RescaleError):
            rescale_model(btio4, 0)

    def test_vanishing_request_rejected(self):
        def tiny(ctx):
            fh = ctx.file_open("f")
            fh.write_at_all(ctx.rank, 1)
            fh.close()

        model = IOModel.from_trace(trace_run(tiny, 2))
        with pytest.raises(RescaleError):
            rescale_model(model, 1000)

    def test_partial_participation_rejected(self):
        def subset(ctx):
            if ctx.rank < 2:
                fh = ctx.file_open("f", unique=True)
                fh.write_at(0, 1024)
                fh.close()

        model = IOModel.from_trace(trace_run(subset, 4))
        with pytest.raises(RescaleError):
            rescale_model(model, 8)

    def test_app_name_tagged(self, btio4):
        assert rescale_model(btio4, 16, etype_size=40).app_name == "btio@np16"

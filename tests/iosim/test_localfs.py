"""Local FS: journal overhead, write-back cache, readahead."""

from __future__ import annotations

import pytest

from repro.iosim.device import MB, Disk, DiskSpec
from repro.iosim.localfs import EXT3, EXT4, FSSpec, LocalFS
from repro.iosim.raid import JBOD

FAST = dict(seq_write_bw=100.0, seq_read_bw=100.0, seek_ms=0.0,
            rotational_ms=0.0, op_overhead_ms=0.0)


def make_fs(cache_mb=0.0, spec=None, **disk_kw) -> LocalFS:
    params = dict(FAST)
    params.update(disk_kw)
    disk = Disk("d", DiskSpec(**params))
    return LocalFS("fs", JBOD("j", [disk]),
                   spec or FSSpec(op_latency_ms=0.0, journal_write_overhead=0.0),
                   cache_mb=cache_mb)


class TestWrites:
    def test_uncached_write_runs_at_disk_speed(self):
        fs = make_fs(cache_mb=0.0)
        end = fs.transfer(0.0, 0, 100 * MB, "write")
        assert end == pytest.approx(1.0)

    def test_cache_absorbs_small_burst(self):
        fs = make_fs(cache_mb=256.0)
        end = fs.transfer(0.0, 0, 10 * MB, "write")
        assert end < 0.02  # memory speed, not 0.1 s of disk time

    def test_cache_overflows_to_disk_speed(self):
        fs = make_fs(cache_mb=64.0)
        t = 0.0
        durations = []
        for i in range(10):
            end = fs.transfer(t, i * 64 * MB, 64 * MB, "write")
            durations.append(end - t)
            t = end
        # First write absorbed; sustained writes converge to disk rate.
        assert durations[0] < 0.1
        assert durations[-1] == pytest.approx(64 / 100, rel=0.2)

    def test_journal_overhead_slows_writes(self):
        plain = make_fs(cache_mb=0.0)
        journaled = make_fs(cache_mb=0.0,
                            spec=FSSpec(op_latency_ms=0.0,
                                        journal_write_overhead=0.10))
        t_plain = plain.transfer(0.0, 0, 100 * MB, "write")
        t_j = journaled.transfer(0.0, 0, 100 * MB, "write")
        assert t_j == pytest.approx(t_plain * 1.10, rel=0.01)

    def test_peak_bw_accounts_for_journal(self):
        fs = make_fs(spec=FSSpec(op_latency_ms=0.0, journal_write_overhead=0.25))
        assert fs.peak_bw("write") == pytest.approx(80.0)
        assert fs.peak_bw("read") == pytest.approx(100.0)


class TestReads:
    def test_sequential_reads_benefit_from_readahead(self):
        fs = make_fs(spec=FSSpec(op_latency_ms=0.0, journal_write_overhead=0.0,
                                 readahead_benefit=0.5))
        e1 = fs.transfer(0.0, 0, 10 * MB, "read")
        e2 = fs.transfer(e1, 10 * MB, 10 * MB, "read")
        assert (e2 - e1) < e1  # second (sequential) read is cheaper

    def test_ext3_vs_ext4_defaults(self):
        assert EXT3.journal_write_overhead > EXT4.journal_write_overhead
        assert EXT3.op_latency_ms > EXT4.op_latency_ms

    def test_reset_clears_state(self):
        fs = make_fs()
        fs.transfer(0.0, 0, MB, "read")
        fs.reset()
        assert fs._last_read_end is None
        assert fs.volume.disks[0].resource.next_free == 0.0

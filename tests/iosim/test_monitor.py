"""iostat-style monitor: bucket attribution, sector accounting."""

from __future__ import annotations

import pytest

from repro.iosim.device import SECTOR_BYTES
from repro.iosim.monitor import DeviceMonitor


class TestSeries:
    def test_single_transfer_one_bucket(self):
        mon = DeviceMonitor()
        mon.record("sda", 0.2, 0.7, 512 * 100, "write")
        rows = mon.series("sda", bucket=1.0)
        assert len(rows) == 1
        assert rows[0].sectors_written_per_s == pytest.approx(100)
        assert rows[0].busy_fraction == pytest.approx(0.5)

    def test_transfer_spanning_buckets_split_proportionally(self):
        mon = DeviceMonitor()
        mon.record("sda", 0.5, 2.5, SECTOR_BYTES * 200, "write")
        rows = mon.series("sda", bucket=1.0)
        assert len(rows) == 3
        # 0.5 s in bucket 0, 1.0 s in bucket 1, 0.5 s in bucket 2.
        assert rows[0].sectors_written_per_s == pytest.approx(50)
        assert rows[1].sectors_written_per_s == pytest.approx(100)
        assert rows[2].sectors_written_per_s == pytest.approx(50)
        assert rows[1].busy_fraction == pytest.approx(1.0)

    def test_reads_and_writes_separate_columns(self):
        mon = DeviceMonitor()
        mon.record("sda", 0.0, 0.5, SECTOR_BYTES * 10, "write")
        mon.record("sda", 0.5, 1.0, SECTOR_BYTES * 30, "read")
        (row,) = mon.series("sda", bucket=1.0)
        assert row.sectors_written_per_s == pytest.approx(10)
        assert row.sectors_read_per_s == pytest.approx(30)

    def test_busy_fraction_capped(self):
        mon = DeviceMonitor()
        mon.record("sda", 0.0, 0.6, 512, "write")
        mon.record("sda", 0.3, 0.9, 512, "write")  # overlap
        (row,) = mon.series("sda", bucket=1.0)
        assert row.busy_fraction == pytest.approx(1.0)

    def test_long_transfer_spanning_many_buckets(self):
        """A transfer across many buckets spreads bytes proportionally.

        Regression test for the sweep implementation: previously each
        sample walked every bucket it spanned; the single-pass rewrite
        must attribute identical per-bucket shares.
        """
        mon = DeviceMonitor()
        # 10 s transfer starting mid-bucket: covers buckets 0..10.
        mon.record("sda", 0.25, 10.25, SECTOR_BYTES * 1000, "write")
        rows = mon.series("sda", bucket=1.0)
        assert len(rows) == 11
        # 100 sectors/s uniform rate: 0.75 s in bucket 0, full seconds
        # in buckets 1..9, the trailing 0.25 s in bucket 10.
        assert rows[0].sectors_written_per_s == pytest.approx(75)
        for row in rows[1:10]:
            assert row.sectors_written_per_s == pytest.approx(100)
            assert row.busy_fraction == pytest.approx(1.0)
        assert rows[10].sectors_written_per_s == pytest.approx(25)
        assert rows[10].busy_fraction == pytest.approx(0.25)
        total = sum(r.sectors_written_per_s for r in rows)
        assert total == pytest.approx(1000)

    def test_many_overlapping_transfers_conserve_bytes(self):
        mon = DeviceMonitor()
        nbytes = SECTOR_BYTES * 64
        for i in range(50):
            begin = 0.1 * i
            mon.record("sda", begin, begin + 7.3, nbytes, "write")
            mon.record("sda", begin, begin + 3.1, nbytes, "read")
        rows = mon.series("sda", bucket=1.0)
        written = sum(r.sectors_written_per_s for r in rows)
        read = sum(r.sectors_read_per_s for r in rows)
        assert written == pytest.approx(50 * 64)
        assert read == pytest.approx(50 * 64)
        assert all(r.busy_fraction <= 1.0 for r in rows)

    def test_instantaneous_transfer_ignored(self):
        mon = DeviceMonitor()
        mon.record("sda", 1.0, 1.0, SECTOR_BYTES * 10, "write")
        mon.record("sda", 0.0, 0.5, SECTOR_BYTES * 10, "write")
        (row,) = mon.series("sda", bucket=1.0)
        assert row.sectors_written_per_s == pytest.approx(10)

    def test_unknown_device_empty(self):
        assert DeviceMonitor().series("nope") == []

    def test_bad_bucket_rejected(self):
        mon = DeviceMonitor()
        mon.record("sda", 0.0, 1.0, 512, "write")
        with pytest.raises(ValueError):
            mon.series("sda", bucket=0.0)


class TestAccounting:
    def test_total_bytes_filters(self):
        mon = DeviceMonitor()
        mon.record("a", 0, 1, 100, "write")
        mon.record("a", 1, 2, 50, "read")
        mon.record("b", 0, 1, 25, "write")
        assert mon.total_bytes() == 175
        assert mon.total_bytes("a") == 150
        assert mon.total_bytes(kind="write") == 125
        assert mon.total_bytes("b", "write") == 25

    def test_devices_sorted(self):
        mon = DeviceMonitor()
        mon.record("z", 0, 1, 1, "write")
        mon.record("a", 0, 1, 1, "write")
        assert mon.devices() == ["a", "z"]

    def test_clear(self):
        mon = DeviceMonitor()
        mon.record("a", 0, 1, 1, "write")
        mon.clear()
        assert mon.samples == [] and mon.devices() == []

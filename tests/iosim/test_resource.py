"""FCFS resource queueing in virtual time."""

from __future__ import annotations

import pytest

from repro.iosim.resource import Resource, ResourceGroup


class TestResource:
    def test_idle_resource_starts_immediately(self):
        r = Resource("r")
        begin, end = r.acquire(5.0, 2.0)
        assert (begin, end) == (5.0, 7.0)

    def test_queueing(self):
        r = Resource("r")
        r.acquire(0.0, 3.0)
        begin, end = r.acquire(1.0, 2.0)  # arrives while busy
        assert begin == 3.0 and end == 5.0

    def test_gap_preserved(self):
        r = Resource("r")
        r.acquire(0.0, 1.0)
        begin, _ = r.acquire(10.0, 1.0)
        assert begin == 10.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Resource("r").acquire(0.0, -1.0)

    def test_busy_time_and_utilization(self):
        r = Resource("r")
        r.acquire(0.0, 2.0)
        r.acquire(4.0, 2.0)
        assert r.busy_time == 4.0
        assert r.utilization(8.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0

    def test_utilization_capped_at_one(self):
        r = Resource("r")
        r.acquire(0.0, 10.0)
        assert r.utilization(5.0) == 1.0

    def test_reset(self):
        r = Resource("r")
        r.acquire(0.0, 2.0)
        r.reset()
        assert r.next_free == 0.0 and r.busy_time == 0.0 and r.total_requests == 0

    def test_monotonic_under_contention(self):
        """Adding earlier traffic never makes a later request finish sooner."""
        lone = Resource("lone")
        _, end_alone = lone.acquire(10.0, 1.0)

        shared = Resource("shared")
        for k in range(5):
            shared.acquire(float(k), 2.0)
        _, end_shared = shared.acquire(10.0, 1.0)
        assert end_shared >= end_alone


class TestResourceGroup:
    def test_parallel_acquisition(self):
        group = ResourceGroup([Resource(f"r{i}") for i in range(3)])
        begin, end = group.acquire_parallel(1.0, 2.0)
        assert begin == 1.0 and end == 3.0

    def test_slowest_member_dominates(self):
        members = [Resource(f"r{i}") for i in range(2)]
        members[1].acquire(0.0, 5.0)  # preload one member
        group = ResourceGroup(members)
        _, end = group.acquire_parallel(0.0, 1.0)
        assert end == 6.0

"""Property test: stripe_shares vs a brute-force per-stripe reference."""

from __future__ import annotations

import random

import pytest

from repro.iosim.globalfs import stripe_shares


def brute_force_shares(offset: int, length: int, stripe_bytes: int,
                       n: int) -> list[int]:
    """Walk every stripe the run touches; O(length / stripe)."""
    shares = [0] * n
    pos = offset
    end = offset + length
    while pos < end:
        stripe = pos // stripe_bytes
        stripe_end = (stripe + 1) * stripe_bytes
        take = min(end, stripe_end) - pos
        shares[stripe % n] += take
        pos += take
    return shares


def test_matches_brute_force_randomized():
    rng = random.Random(20260807)
    for _ in range(500):
        stripe = rng.choice([1, 2, 512, 4096, 65536, 65537])
        n = rng.randint(1, 9)
        offset = rng.randint(0, 20 * stripe)
        length = rng.randint(1, 30 * stripe + rng.randint(0, stripe))
        got = stripe_shares(offset, length, stripe, n)
        want = brute_force_shares(offset, length, stripe, n)
        assert got == want, (offset, length, stripe, n)
        assert sum(got) == length


@pytest.mark.parametrize("offset,length,stripe,n", [
    (0, 1, 1, 1),
    (0, 65536, 65536, 4),        # exactly one stripe
    (65535, 2, 65536, 4),        # straddles a boundary
    (65536 * 3, 65536 * 8, 65536, 3),  # whole stripes, wraps rotation
    (123, 0, 4096, 4),           # zero length
    (123, -5, 4096, 4),          # negative length
])
def test_edge_cases(offset, length, stripe, n):
    got = stripe_shares(offset, length, stripe, n)
    if length <= 0:
        assert got == [0] * n
    else:
        assert got == brute_force_shares(offset, length, stripe, n)


def test_negative_offset_rejected():
    with pytest.raises(ValueError, match="negative offset"):
        stripe_shares(-1, 10, 4096, 4)

"""Two-phase collective I/O: merging, splitting, end-to-end cost."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.collective import merge_runs, split_regions, two_phase_io
from repro.iosim.device import MB
from repro.simmpi.engine import IORequest

from tests.conftest import make_nfs_cluster


class TestMergeRuns:
    def test_disjoint_preserved(self):
        assert merge_runs([[(0, 10)], [(20, 10)]]) == [(0, 10), (20, 10)]

    def test_adjacent_coalesced(self):
        assert merge_runs([[(0, 10)], [(10, 10)]]) == [(0, 20)]

    def test_overlap_coalesced(self):
        assert merge_runs([[(0, 15)], [(10, 10)]]) == [(0, 20)]

    def test_interleaved_strided_ranks_merge_fully(self):
        """The BT-IO case: np interleaved blocks merge into one region."""
        run_lists = [[(r * 10, 10)] for r in range(8)]
        assert merge_runs(run_lists) == [(0, 80)]

    def test_empty(self):
        assert merge_runs([]) == []
        assert merge_runs([[], []]) == []

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 100)),
                    min_size=0, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_merge_invariants(self, runs):
        merged = merge_runs([runs])
        # Sorted, disjoint, same byte set.
        for (o1, l1), (o2, l2) in zip(merged, merged[1:]):
            assert o1 + l1 < o2
        covered = set()
        for o, ln in runs:
            covered.update(range(o, o + ln))
        merged_bytes = set()
        for o, ln in merged:
            merged_bytes.update(range(o, o + ln))
        assert merged_bytes == covered


class TestSplitRegions:
    def test_even_split(self):
        parts = split_regions([(0, 100)], 4)
        assert len(parts) == 4
        assert sum(ln for part in parts for _, ln in part) == 100
        sizes = [sum(ln for _, ln in p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_multiple_regions(self):
        parts = split_regions([(0, 50), (100, 50)], 2)
        total = sum(ln for part in parts for _, ln in part)
        assert total == 100

    def test_empty(self):
        assert split_regions([], 3) == [[], [], []]

    @given(
        regions=st.lists(st.tuples(st.integers(0, 500), st.integers(1, 50)),
                         min_size=1, max_size=6),
        nparts=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservation(self, regions, nparts):
        merged = merge_runs([regions])
        parts = split_regions(merged, nparts)
        assert sum(ln for p in parts for _, ln in p) == \
            sum(ln for _, ln in merged)


class TestTwoPhase:
    def _reqs(self, cluster, np_, nbytes):
        return [
            IORequest(rank=r, node=r % len(cluster.compute_nodes), filename="f",
                      file_id=0, kind="write", runs=[(r * nbytes, nbytes)],
                      start=0.0, collective=True)
            for r in range(np_)
        ]

    def test_completion_after_start(self):
        cluster = make_nfs_cluster()
        reqs = self._reqs(cluster, 4, 10 * MB)
        end = two_phase_io(reqs, 5.0, cluster.globalfs, cluster.compute_nodes,
                           cluster.compute_net)
        assert end > 5.0

    def test_empty_requests_noop(self):
        cluster = make_nfs_cluster()
        reqs = [IORequest(rank=0, node=0, filename="f", file_id=0,
                          kind="write", runs=[], start=0.0, collective=True)]
        assert two_phase_io(reqs, 3.0, cluster.globalfs,
                            cluster.compute_nodes, cluster.compute_net) == 3.0

    def test_more_data_takes_longer(self):
        c1, c2 = make_nfs_cluster(), make_nfs_cluster()
        small = two_phase_io(self._reqs(c1, 4, 1 * MB), 0.0, c1.globalfs,
                             c1.compute_nodes, c1.compute_net)
        big = two_phase_io(self._reqs(c2, 4, 50 * MB), 0.0, c2.globalfs,
                           c2.compute_nodes, c2.compute_net)
        assert big > small

    def test_cb_nodes_cap_respected(self):
        cluster = make_nfs_cluster()
        reqs = self._reqs(cluster, 4, MB)
        end = two_phase_io(reqs, 0.0, cluster.globalfs, cluster.compute_nodes,
                           cluster.compute_net, cb_nodes=1)
        assert end > 0.0

    def test_unique_files_not_merged(self):
        """Regression: ranks writing their own files at identical offsets
        must move np x nbytes, not collapse into one merged region."""
        shared_cluster, unique_cluster = make_nfs_cluster(), make_nfs_cluster()
        nbytes = 20 * MB
        shared = [
            IORequest(rank=r, node=r, filename="f", file_id=0, kind="write",
                      runs=[(0, nbytes)], start=0.0, collective=True)
            for r in range(4)
        ]
        unique = [
            IORequest(rank=r, node=r, filename=f"f.{r}", file_id=r,
                      kind="write", runs=[(0, nbytes)], start=0.0,
                      collective=True, unique_file=True)
            for r in range(4)
        ]
        end_shared = two_phase_io(shared, 0.0, shared_cluster.globalfs,
                                  shared_cluster.compute_nodes,
                                  shared_cluster.compute_net)
        end_unique = two_phase_io(unique, 0.0, unique_cluster.globalfs,
                                  unique_cluster.compute_nodes,
                                  unique_cluster.compute_net)
        # Shared identical ranges overlap into one region (1x bytes);
        # unique files genuinely move 4x the bytes.
        assert unique_cluster.monitor.total_bytes(kind="write") > \
            2 * shared_cluster.monitor.total_bytes(kind="write")
        assert end_unique > end_shared

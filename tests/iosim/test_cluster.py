"""Cluster as engine Platform: placement, service, reset, monitoring."""

from __future__ import annotations

import pytest

from repro.iosim.device import MB
from repro.simmpi.engine import Engine, IORequest

from tests.conftest import make_nfs_cluster, make_pvfs_cluster


class TestPlacement:
    def test_round_robin(self):
        cluster = make_nfs_cluster(n_compute=4)
        assert [cluster.node_of_rank(r, 8) for r in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]


class TestService:
    def _req(self, kind="write", nbytes=MB, rank=0):
        return IORequest(rank=rank, node=rank, filename="f", file_id=0,
                         kind=kind, runs=[(0, nbytes)], start=0.0)

    def test_service_io_positive_duration(self, nfs_cluster):
        assert nfs_cluster.service_io(self._req()) > 0.0

    def test_collective_same_duration_for_all(self, nfs_cluster):
        reqs = [self._req(rank=r) for r in range(4)]
        durations = nfs_cluster.service_collective_io(reqs, 0.0)
        assert set(durations) == {0, 1, 2, 3}
        assert len(set(durations.values())) == 1

    def test_comm_time_positive(self, nfs_cluster):
        assert nfs_cluster.comm_time(1024, 4, "allreduce", 0.0) > 0.0

    def test_peak_bw_nfs_vs_pvfs(self):
        nfs = make_nfs_cluster()
        pvfs = make_pvfs_cluster(n_ions=3)
        # eq. (4): PVFS2 sums its 3 single-disk nodes; NFS is one RAID 5.
        assert pvfs.peak_bw("write") > 0
        assert nfs.peak_bw("write") > 0

    def test_monitor_attached_to_all_disks(self):
        cluster = make_pvfs_cluster(n_ions=3)
        cluster.service_io(self._req(nbytes=10 * MB))
        assert len(cluster.monitor.devices()) >= 2  # striped over ions

    def test_reset_clears_queues_and_monitor(self):
        cluster = make_nfs_cluster()
        cluster.service_io(self._req(nbytes=10 * MB))
        assert cluster.monitor.samples
        cluster.reset()
        assert not cluster.monitor.samples
        assert cluster.globalfs.ions[0].nic.resource.next_free == 0.0


class TestEndToEnd:
    def test_engine_run_on_cluster(self):
        cluster = make_nfs_cluster()

        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at_all(ctx.rank * MB, MB)
            fh.close()
            ctx.barrier()

        result = Engine(4, platform=cluster).run(program)
        assert result.elapsed > 0.0
        assert cluster.monitor.total_bytes(kind="write") > 0

    def test_requires_compute_nodes(self):
        from repro.iosim import NFS, Cluster, GIGABIT_ETHERNET
        cluster = make_nfs_cluster()
        with pytest.raises(ValueError):
            Cluster("empty", [], cluster.globalfs, GIGABIT_ETHERNET)

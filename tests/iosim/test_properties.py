"""Cross-cutting iosim properties (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.device import MB, Disk, DiskSpec
from repro.iosim.globalfs import NFS, PVFS2, Access
from repro.iosim.localfs import FSSpec, LocalFS
from repro.iosim.network import Link, LinkSpec
from repro.iosim.nodes import ComputeNode, IONode
from repro.iosim.raid import JBOD, RAID0, RAID5

FLAT_FS = FSSpec(op_latency_ms=0.0, journal_write_overhead=0.0)


def fresh_disk(bw=100.0):
    return Disk("d", DiskSpec(seq_write_bw=bw, seq_read_bw=bw))


class TestDiskProperties:
    @given(nbytes=st.integers(1, 512 * MB), kind=st.sampled_from(["write", "read"]))
    @settings(max_examples=60, deadline=None)
    def test_duration_positive_and_bounded_below_by_media_rate(self, nbytes, kind):
        disk = fresh_disk(bw=100.0)
        end = disk.transfer(0.0, 0, nbytes, kind)
        assert end > 0.0
        assert end >= nbytes / (100.0 * MB)  # cannot beat the media

    @given(sizes=st.lists(st.integers(1, 32 * MB), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_completions_monotone(self, sizes):
        disk = fresh_disk()
        t = 0.0
        ends = []
        for i, nbytes in enumerate(sizes):
            t = disk.transfer(t, i * 64 * MB, nbytes, "write")
            ends.append(t)
        assert ends == sorted(ends)

    @given(a=st.integers(1, 64 * MB), b=st.integers(1, 64 * MB))
    @settings(max_examples=40, deadline=None)
    def test_larger_transfer_never_faster(self, a, b):
        lo, hi = sorted((a, b))
        d1, d2 = fresh_disk(), fresh_disk()
        t_lo = d1.transfer(0.0, 0, lo, "write")
        t_hi = d2.transfer(0.0, 0, hi, "write")
        assert t_hi >= t_lo


class TestVolumeProperties:
    @given(n=st.integers(1, 6), nbytes=st.integers(MB, 64 * MB))
    @settings(max_examples=30, deadline=None)
    def test_raid0_never_slower_than_jbod(self, n, nbytes):
        disks0 = [fresh_disk() for _ in range(n)]
        disksj = [fresh_disk() for _ in range(n)]
        for d in disks0 + disksj:
            d.spec = DiskSpec(seq_write_bw=100.0, seq_read_bw=100.0,
                              seek_ms=0.0, rotational_ms=0.0,
                              op_overhead_ms=0.0)
        r0 = RAID0("r0", disks0)
        jbod = JBOD("j", disksj)
        assert r0.transfer(0.0, 0, nbytes, "write") <= \
            jbod.transfer(0.0, 0, nbytes, "write") + 1e-9

    @given(nbytes=st.integers(MB, 128 * MB))
    @settings(max_examples=30, deadline=None)
    def test_raid5_capacity_peak_relation(self, nbytes):
        disks = [fresh_disk() for _ in range(5)]
        r5 = RAID5("r5", disks)
        # Peak bandwidth implies a lower bound on any transfer's duration.
        end = r5.transfer(0.0, 0, nbytes, "write")
        assert end >= nbytes / (r5.peak_bw("write") * MB) * 0.99


class TestLinkProperties:
    @given(sizes=st.lists(st.integers(1, 16 * MB), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_serialization_sums(self, sizes):
        link = Link("l", LinkSpec(bw_mb_s=100.0, latency_s=0.0))
        end = 0.0
        for nbytes in sizes:
            _, end = link.send(0.0, nbytes)
        assert end == pytest.approx(sum(sizes) / (100.0 * MB))

    @given(amp=st.floats(0.0, 0.2), t=st.floats(0.0, 10_000.0))
    @settings(max_examples=60, deadline=None)
    def test_modulated_bandwidth_in_band(self, amp, t):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0, load_amplitude=amp)
        bw = spec.bw_at(t)
        assert 100.0 * (1 - amp) - 1e-6 <= bw <= 100.0 * (1 + amp) + 1e-6


class TestGlobalFSProperties:
    def _nfs(self):
        fs = LocalFS("fs", JBOD("j", [fresh_disk()]), FLAT_FS, cache_mb=0.0)
        return NFS(IONode.make("srv", fs))

    @given(nbytes=st.integers(1, 64 * MB))
    @settings(max_examples=30, deadline=None)
    def test_nfs_completion_after_start(self, nbytes):
        nfs = self._nfs()
        client = ComputeNode.make("c")
        start = 5.0
        end = nfs.service(Access(start, client, [(0, nbytes)], "write"))
        assert end > start

    @given(n_ions=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_pvfs_peak_scales_linearly(self, n_ions):
        ions = []
        for i in range(n_ions):
            fs = LocalFS(f"fs{i}", JBOD(f"j{i}", [fresh_disk()]), FLAT_FS)
            ions.append(IONode.make(f"ion{i}", fs))
        pvfs = PVFS2(ions)
        assert pvfs.peak_bw("write") == pytest.approx(
            n_ions * ions[0].peak_bw("write"))

"""Disk model: sequential vs seek costs, fragments, monitoring."""

from __future__ import annotations

import pytest

from repro.iosim.device import MB, Disk, DiskSpec
from repro.iosim.monitor import DeviceMonitor


def make_disk(**kw) -> Disk:
    return Disk("d0", DiskSpec(**kw))


class TestTransferCost:
    def test_first_access_pays_seek(self):
        d = make_disk(seq_write_bw=100.0, seek_ms=10.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        end = d.transfer(0.0, 0, 100 * MB, "write")
        assert end == pytest.approx(1.0 + 0.010)

    def test_sequential_continuation_skips_seek(self):
        d = make_disk(seq_write_bw=100.0, seek_ms=10.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        e1 = d.transfer(0.0, 0, 10 * MB, "write")
        e2 = d.transfer(e1, 10 * MB, 10 * MB, "write")
        assert e2 - e1 == pytest.approx(0.1)  # no second seek

    def test_random_jump_pays_seek(self):
        d = make_disk(seq_write_bw=100.0, seek_ms=10.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        e1 = d.transfer(0.0, 0, 10 * MB, "write")
        e2 = d.transfer(e1, 500 * MB, 10 * MB, "write")
        assert e2 - e1 == pytest.approx(0.1 + 0.010)

    def test_near_sequential_tolerated(self):
        """Small skips (journal padding) are not charged a full seek."""
        d = make_disk(seq_write_bw=100.0, seek_ms=10.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        e1 = d.transfer(0.0, 0, 10 * MB, "write")
        e2 = d.transfer(e1, 10 * MB + 32 * 1024, 10 * MB, "write")
        assert e2 - e1 == pytest.approx(0.1)

    def test_fragments_charge_extra_seeks(self):
        d = make_disk(seq_write_bw=100.0, seek_ms=10.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        d.transfer(0.0, 0, MB, "write")
        base = d.transfer(100.0, MB, 10 * MB, "write") - 100.0
        d.reset()
        d.transfer(0.0, 0, MB, "write")
        frag = d.transfer(100.0, MB, 10 * MB, "write", fragments=5) - 100.0
        assert frag == pytest.approx(base + 4 * 0.010)

    def test_read_write_bandwidth_differ(self):
        d = make_disk(seq_write_bw=50.0, seq_read_bw=100.0, seek_ms=0.0,
                      rotational_ms=0.0, op_overhead_ms=0.0)
        w = d.transfer(0.0, 0, 100 * MB, "write")
        r = d.transfer(w, 100 * MB, 100 * MB, "read")
        assert w == pytest.approx(2.0)
        assert r - w == pytest.approx(1.0)

    def test_zero_bytes_is_noop(self):
        d = make_disk()
        assert d.transfer(3.0, 0, 0, "write") == 3.0

    def test_queueing_through_resource(self):
        d = make_disk(seq_write_bw=100.0, seek_ms=0.0, rotational_ms=0.0,
                      op_overhead_ms=0.0)
        d.transfer(0.0, 0, 100 * MB, "write")  # busy until 1.0
        end = d.transfer(0.5, 100 * MB, 100 * MB, "write")
        assert end == pytest.approx(2.0)

    def test_peak_bw(self):
        d = make_disk(seq_write_bw=80.0, seq_read_bw=90.0)
        assert d.peak_bw("write") == 80.0
        assert d.peak_bw("read") == 90.0


class TestMonitoring:
    def test_transfers_recorded(self):
        mon = DeviceMonitor()
        d = make_disk()
        d.monitor = mon
        d.transfer(0.0, 0, MB, "write")
        d.transfer(1.0, MB, 2 * MB, "read")
        assert mon.total_bytes("d0") == 3 * MB
        assert mon.total_bytes("d0", kind="write") == MB
        assert mon.devices() == ["d0"]

    def test_reset_clears_head(self):
        d = make_disk(seek_ms=10.0, rotational_ms=0.0, op_overhead_ms=0.0,
                      seq_write_bw=100.0)
        d.transfer(0.0, 0, MB, "write")
        d.reset()
        end = d.transfer(0.0, MB, MB, "write")  # would be sequential pre-reset
        assert end == pytest.approx(MB / (100 * MB) + 0.010)

"""Volumes: JBOD routing, RAID 0/1/5 bandwidth and capacity invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.device import MB, Disk, DiskSpec
from repro.iosim.device import SSD_SPEC
from repro.iosim.raid import JBOD, RAID0, RAID1, RAID5, RAID6, RAID10, summarize


def disks(n, **kw):
    return [Disk(f"d{i}", DiskSpec(**kw)) for i in range(n)]


FAST = dict(seq_write_bw=100.0, seq_read_bw=100.0, seek_ms=0.0,
            rotational_ms=0.0, op_overhead_ms=0.0, capacity_gb=100.0)


class TestJBOD:
    def test_locator_routes_to_one_disk(self):
        v = JBOD("j", disks(3, **FAST))
        v.transfer(0.0, 0, MB, "write", locator=1)
        assert v.disks[1].resource.total_requests == 1
        assert v.disks[0].resource.total_requests == 0

    def test_peak_is_single_disk(self):
        v = JBOD("j", disks(3, **FAST))
        assert v.peak_bw("write") == 100.0

    def test_capacity_sums(self):
        v = JBOD("j", disks(3, **FAST))
        assert v.capacity_gb == 300.0


class TestRAID0:
    def test_bandwidth_scales(self):
        v = RAID0("r0", disks(4, **FAST))
        end = v.transfer(0.0, 0, 400 * MB, "write")
        assert end == pytest.approx(1.0)  # 100 MB per disk at 100 MB/s
        assert v.peak_bw("write") == 400.0


class TestRAID1:
    def test_write_hits_both_members(self):
        v = RAID1("r1", disks(2, **FAST))
        v.transfer(0.0, 0, MB, "write")
        assert all(d.resource.total_requests == 1 for d in v.disks)

    def test_read_faster_than_write(self):
        v = RAID1("r1", disks(2, **FAST))
        w = v.transfer(0.0, 0, 100 * MB, "write")
        r = v.transfer(w, 0, 100 * MB, "read") - w
        assert w == pytest.approx(1.0)
        assert r < w

    def test_capacity_is_one_member(self):
        v = RAID1("r1", disks(2, **FAST))
        assert v.capacity_gb == 100.0


class TestRAID5:
    def test_needs_three_disks(self):
        with pytest.raises(ValueError):
            RAID5("r5", disks(2, **FAST))

    def test_full_stripe_write_uses_data_disks_rate(self):
        v = RAID5("r5", disks(5, **FAST), stripe_kb=256)
        end = v.transfer(0.0, 0, 400 * MB, "write")
        assert end == pytest.approx(1.0)  # 100 MB per data disk

    def test_small_write_pays_read_modify_write(self):
        v = RAID5("r5", disks(5, **FAST), stripe_kb=256)
        small = 64 * 1024  # below the full stripe
        end = v.transfer(0.0, 0, small, "write")
        # read + write on data and parity members: ~2x the raw transfer.
        assert end >= 2 * small / (100 * MB)

    def test_read_uses_data_disks(self):
        v = RAID5("r5", disks(5, **FAST))
        end = v.transfer(0.0, 0, 400 * MB, "read")
        assert end == pytest.approx(1.0)

    def test_capacity_excludes_parity(self):
        v = RAID5("r5", disks(5, **FAST))
        assert v.capacity_gb == 400.0

    def test_paper_configuration_peaks(self):
        """Conf A shape: 5 disks, ~400 write / ~350 read MB/s."""
        v = RAID5("r5", disks(5, seq_write_bw=105.0, seq_read_bw=87.5))
        assert v.peak_bw("write") == pytest.approx(420.0)
        assert v.peak_bw("read") == pytest.approx(350.0)


class TestSummaries:
    def test_summarize(self):
        v = RAID5("r5", disks(5, **FAST))
        s = summarize(v)
        assert s.level == "RAID5" and s.n_disks == 5
        assert s.capacity_gb == 400.0

    @given(n=st.integers(3, 8), bw=st.floats(10.0, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_raid5_capacity_and_peak_invariants(self, n, bw):
        v = RAID5("r5", disks(n, seq_write_bw=bw, seq_read_bw=bw,
                              capacity_gb=50.0))
        assert v.capacity_gb == pytest.approx(50.0 * (n - 1))
        assert v.peak_bw("write") == pytest.approx(bw * (n - 1))
        assert v.peak_bw("read") == pytest.approx(bw * (n - 1))


class TestRAID6:
    def test_needs_four_disks(self):
        with pytest.raises(ValueError):
            RAID6("r6", disks(3, **FAST))

    def test_capacity_excludes_two_parity(self):
        v = RAID6("r6", disks(6, **FAST))
        assert v.capacity_gb == 400.0

    def test_full_stripe_write_rate(self):
        v = RAID6("r6", disks(6, **FAST), stripe_kb=256)
        end = v.transfer(0.0, 0, 400 * MB, "write")
        assert end == pytest.approx(1.0)  # 100 MB per data disk

    def test_small_write_penalty_worse_than_raid5(self):
        r5 = RAID5("r5", disks(6, **FAST), stripe_kb=256)
        r6 = RAID6("r6", disks(6, **FAST), stripe_kb=256)
        small = 64 * 1024
        assert r6.transfer(0.0, 0, small, "write") >= \
            r5.transfer(0.0, 0, small, "write")

    def test_peaks(self):
        v = RAID6("r6", disks(6, **FAST))
        assert v.peak_bw("write") == pytest.approx(400.0)
        assert v.peak_bw("read") == pytest.approx(400.0)


class TestRAID10:
    def test_needs_even_count(self):
        with pytest.raises(ValueError):
            RAID10("r10", disks(5, **FAST))

    def test_capacity_is_half(self):
        v = RAID10("r10", disks(6, **FAST))
        assert v.capacity_gb == 300.0

    def test_write_hits_all_disks(self):
        v = RAID10("r10", disks(4, **FAST))
        v.transfer(0.0, 0, MB, "write")
        assert all(d.resource.total_requests == 1 for d in v.disks)

    def test_reads_faster_than_writes(self):
        v = RAID10("r10", disks(4, **FAST))
        assert v.peak_bw("read") == pytest.approx(2 * v.peak_bw("write"))


class TestSSD:
    def test_no_seek_penalty(self):
        from repro.iosim.device import Disk
        ssd = Disk("ssd0", SSD_SPEC)
        e1 = ssd.transfer(0.0, 0, 10 * MB, "write")
        # A far jump costs the same as a sequential continuation.
        e2 = ssd.transfer(e1, 400 * 1024 * MB, 10 * MB, "write")
        assert (e2 - e1) == pytest.approx(e1, rel=0.02)

    def test_faster_than_spinning_disk(self):
        from repro.iosim.device import Disk, DiskSpec
        hdd = Disk("hdd", DiskSpec())
        ssd = Disk("ssd", SSD_SPEC)
        t_hdd = hdd.transfer(0.0, 0, 100 * MB, "read")
        t_ssd = ssd.transfer(0.0, 0, 100 * MB, "read")
        assert t_ssd < t_hdd / 3

"""Links: serialization, presets, background-load modulation, comm costs."""

from __future__ import annotations

import math

import pytest

from repro.iosim.device import MB
from repro.iosim.network import (
    GIGABIT_ETHERNET,
    INFINIBAND_20G,
    Link,
    LinkSpec,
    collective_comm_time,
)


class TestLink:
    def test_message_cost(self):
        link = Link("l", LinkSpec(bw_mb_s=100.0, latency_s=0.001))
        assert link.cost(100 * MB) == pytest.approx(1.001)

    def test_concurrent_flows_serialize(self):
        link = Link("l", LinkSpec(bw_mb_s=100.0, latency_s=0.0))
        _, e1 = link.send(0.0, 100 * MB)
        _, e2 = link.send(0.0, 100 * MB)
        assert e1 == pytest.approx(1.0)
        assert e2 == pytest.approx(2.0)

    def test_presets_ordering(self):
        assert INFINIBAND_20G.bw_mb_s > 10 * GIGABIT_ETHERNET.bw_mb_s
        assert INFINIBAND_20G.latency_s < GIGABIT_ETHERNET.latency_s

    def test_reset(self):
        link = Link("l")
        link.send(0.0, MB)
        link.reset()
        assert link.resource.next_free == 0.0


class TestBackgroundLoad:
    def test_flat_by_default(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0)
        assert spec.bw_at(0.0) == spec.bw_at(123.4) == 100.0

    def test_modulation_bounds(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0,
                        load_amplitude=0.05, load_period_s=100.0)
        values = [spec.bw_at(t) for t in range(0, 200, 7)]
        assert min(values) >= 95.0 - 1e-9
        assert max(values) <= 105.0 + 1e-9
        assert max(values) > 104.0  # the swing is actually exercised

    def test_modulation_is_deterministic(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0, load_amplitude=0.05)
        assert spec.bw_at(42.0) == spec.bw_at(42.0)

    def test_periodicity(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0,
                        load_amplitude=0.1, load_period_s=50.0)
        assert spec.bw_at(13.0) == pytest.approx(spec.bw_at(63.0))

    def test_send_cost_varies_with_time(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0,
                        load_amplitude=0.1, load_period_s=100.0)
        link = Link("l", spec)
        c_peak = link.cost(100 * MB, at=25.0)  # sin = +1
        c_trough = link.cost(100 * MB, at=75.0)  # sin = -1
        assert c_peak < c_trough


class TestCollectiveCommTime:
    def test_barrier_latency_scales_with_log_ranks(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.001)
        t4 = collective_comm_time(spec, 0, 4, "barrier")
        t64 = collective_comm_time(spec, 0, 64, "barrier")
        assert t64 == pytest.approx(t4 * 3)

    def test_bcast_charges_payload(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.0)
        t = collective_comm_time(spec, 100 * MB, 2, "bcast")
        assert t >= 1.0

    def test_p2p(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.5)
        t = collective_comm_time(spec, 100 * MB, 2, "p2p")
        assert t == pytest.approx(1.5)

    def test_zero_byte_patterns_positive(self):
        spec = LinkSpec(bw_mb_s=100.0, latency_s=0.001)
        for pattern in ("barrier", "bcast", "allreduce", "gather",
                        "alltoall", "split", "file_open", "p2p"):
            assert collective_comm_time(spec, 0, 8, pattern) > 0.0

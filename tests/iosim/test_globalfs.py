"""Global filesystems: striping arithmetic, NFS funneling, parallel scaling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.device import MB, Disk, DiskSpec
from repro.iosim.globalfs import NFS, PVFS2, Access, Lustre, stripe_shares
from repro.iosim.localfs import FSSpec, LocalFS
from repro.iosim.network import GIGABIT_ETHERNET, LinkSpec
from repro.iosim.nodes import ComputeNode, IONode
from repro.iosim.raid import JBOD

FAST_DISK = dict(seq_write_bw=100.0, seq_read_bw=100.0, seek_ms=0.0,
                 rotational_ms=0.0, op_overhead_ms=0.0)
FLAT_FS = FSSpec(op_latency_ms=0.0, journal_write_overhead=0.0)
FAST_LINK = LinkSpec(bw_mb_s=1000.0, latency_s=0.0)


def make_ion(name="ion", link=FAST_LINK, cache=0.0, **disk_kw) -> IONode:
    params = dict(FAST_DISK)
    params.update(disk_kw)
    disk = Disk(f"{name}-d", DiskSpec(**params))
    fs = LocalFS(f"{name}-fs", JBOD(f"{name}-j", [disk]), FLAT_FS, cache_mb=cache)
    return IONode.make(name, fs, link)


def client(name="cn", link=FAST_LINK) -> ComputeNode:
    return ComputeNode.make(name, link)


class TestStripeShares:
    def test_single_stripe(self):
        assert stripe_shares(0, 100, 1024, 4) == [100, 0, 0, 0]

    def test_exact_round_robin(self):
        assert stripe_shares(0, 4096, 1024, 4) == [1024, 1024, 1024, 1024]

    def test_offset_rotation(self):
        # Starts in stripe 1 -> server 1 gets the head.
        assert stripe_shares(1024, 2048, 1024, 4) == [0, 1024, 1024, 0]

    def test_partial_head_and_tail(self):
        shares = stripe_shares(512, 1024, 1024, 2)
        assert shares == [512, 512]

    def test_zero_length(self):
        assert stripe_shares(0, 0, 1024, 3) == [0, 0, 0]

    @given(
        offset=st.integers(0, 10_000),
        length=st.integers(1, 50_000),
        stripe=st.sampled_from([64, 100, 1024, 4096]),
        n=st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_bytewise_reference(self, offset, length, stripe, n):
        shares = stripe_shares(offset, length, stripe, n)
        # Reference: walk stripes.
        ref = [0] * n
        pos = offset
        remaining = length
        while remaining > 0:
            k = pos // stripe
            take = min((k + 1) * stripe - pos, remaining)
            ref[k % n] += take
            pos += take
            remaining -= take
        assert shares == ref
        assert sum(shares) == length


class TestNFS:
    def test_single_server_funnels_all_clients(self):
        server = make_ion(link=LinkSpec(bw_mb_s=100.0, latency_s=0.0),
                          seq_write_bw=1000.0, cache=10_000.0)
        nfs = NFS(server)
        clients = [client(f"c{i}") for i in range(4)]
        ends = [nfs.service(Access(0.0, c, [(i * 100 * MB, 100 * MB)], "write"))
                for i, c in enumerate(clients)]
        # 400 MB through a 100 MB/s server NIC: at least 4 seconds total.
        assert max(ends) >= 4.0

    def test_read_rpc_penalty(self):
        fast = NFS(make_ion("a"), read_rpc_ms=0.0)
        slow = NFS(make_ion("b"), read_chunk_kb=128, read_rpc_ms=1.0)
        acc = lambda ion: Access(0.0, client(), [(0, 10 * MB)], "read")
        t_fast = fast.service(acc("a"))
        t_slow = slow.service(acc("b"))
        assert t_slow > t_fast + 0.07  # 80 chunks x 1 ms

    def test_peak_is_single_node(self):
        server = make_ion()
        assert NFS(server).peak_bw("write") == server.peak_bw("write")


class TestPVFS2:
    def test_aggregate_faster_than_single_server(self):
        slow_disk = dict(seq_write_bw=50.0, seq_read_bw=50.0, seek_ms=0.0,
                         rotational_ms=0.0, op_overhead_ms=0.0)
        one = NFS(make_ion("one", **slow_disk))
        three = PVFS2([make_ion(f"p{i}", **slow_disk) for i in range(3)])
        runs = [(0, 300 * MB)]
        t_one = one.service(Access(0.0, client("c1"), runs, "write"))
        t_three = three.service(Access(0.0, client("c2"), runs, "write"))
        assert t_three < t_one

    def test_peak_sums_over_ions(self):
        ions = [make_ion(f"p{i}") for i in range(3)]
        assert PVFS2(ions).peak_bw("write") == pytest.approx(
            sum(i.peak_bw("write") for i in ions))

    def test_per_stripe_overhead_slows_service(self):
        ions_a = [make_ion("a0"), make_ion("a1")]
        ions_b = [make_ion("b0"), make_ion("b1")]
        fast = PVFS2(ions_a, stripe_kb=64, per_stripe_overhead_ms=0.0)
        slow = PVFS2(ions_b, stripe_kb=64, per_stripe_overhead_ms=1.0)
        runs = [(0, 10 * MB)]
        assert slow.service(Access(0.0, client(), runs, "write")) > \
            fast.service(Access(0.0, client(), runs, "write"))

    def test_requires_ions(self):
        with pytest.raises(ValueError):
            PVFS2([])


class TestLustre:
    def test_stripe_count_limits_osts_used(self):
        osses = [make_ion(f"o{i}") for i in range(6)]
        fs = Lustre(osses, stripe_count=2)
        fs.service(Access(0.0, client(), [(0, 10 * MB)], "write", file_id=0))
        used = [o for o in osses if o.fs.volume.disks[0].resource.total_requests]
        assert len(used) == 2

    def test_different_files_use_different_osts(self):
        osses = [make_ion(f"o{i}") for i in range(6)]
        fs = Lustre(osses, stripe_count=1)
        fs.service(Access(0.0, client(), [(0, MB)], "write", file_id=0))
        fs.service(Access(0.0, client(), [(0, MB)], "write", file_id=3))
        used = [i for i, o in enumerate(osses)
                if o.fs.volume.disks[0].resource.total_requests]
        assert used == [0, 3]

    def test_peak_sums_all_osses(self):
        osses = [make_ion(f"o{i}") for i in range(4)]
        assert Lustre(osses).peak_bw("read") == pytest.approx(
            sum(o.peak_bw("read") for o in osses))

    def test_requires_osses(self):
        with pytest.raises(ValueError):
            Lustre([])

"""Degraded-mode RAID/JBOD modeling and worst-case selection."""

from __future__ import annotations

import pytest

from repro.faults import DataLossError
from repro.faults.degraded import (
    NOMINAL,
    DegradedScenario,
    degrade,
    estimate_degraded,
    single_disk_scenarios,
    worst_case_selection,
)
from repro.iosim import (
    JBOD,
    MB,
    RAID0,
    RAID1,
    RAID5,
    RAID6,
    RAID10,
    Disk,
    DiskSpec,
)


def disks(n: int, prefix: str = "d") -> list[Disk]:
    return [Disk(f"{prefix}{i}", DiskSpec()) for i in range(n)]


# -- volume validation (satellite) --------------------------------------------

def test_duplicate_disk_instance_rejected():
    d = Disk("dup", DiskSpec())
    with pytest.raises(ValueError, match="same Disk instance"):
        RAID5("vol", [d, d, Disk("other", DiskSpec())])


def test_raid5_needs_three_members():
    with pytest.raises(ValueError, match="at least 3 member disks"):
        RAID5("vol", disks(2))


def test_raid6_needs_four_members():
    with pytest.raises(ValueError, match="at least 4 member disks"):
        RAID6("vol", disks(3))


def test_raid10_needs_even_members():
    with pytest.raises(ValueError, match="even number"):
        RAID10("vol", disks(5))


def test_empty_volume_rejected():
    with pytest.raises(ValueError, match="at least one disk"):
        JBOD("vol", [])


def test_fail_disk_bounds_checked():
    vol = RAID5("vol", disks(3))
    with pytest.raises(IndexError, match="cannot fail member 7"):
        vol.fail_disk(7)


# -- degraded behaviour per level ---------------------------------------------

def test_jbod_loses_files_on_dead_member_only():
    vol = JBOD("vol", disks(3))
    vol.fail_disk(1)
    # locator 0 and 2 live on survivors
    assert vol.transfer(0.0, 0, MB, "read", locator=0) > 0.0
    assert vol.transfer(0.0, 0, MB, "read", locator=2) > 0.0
    with pytest.raises(DataLossError, match="JBOD has no redundancy"):
        vol.transfer(0.0, 0, MB, "read", locator=1)
    # survivors' capacity and peak are still reported
    assert vol.capacity_gb == pytest.approx(
        2 * vol.disks[0].spec.capacity_gb)


def test_raid0_any_death_is_total_loss():
    vol = RAID0("vol", disks(4))
    vol.fail_disk(2)
    with pytest.raises(DataLossError):
        vol.transfer(0.0, 0, MB, "read")
    with pytest.raises(DataLossError):
        vol.peak_bw("read")


def test_raid1_survives_on_remaining_mirror():
    vol = RAID1("vol", disks(2))
    vol.fail_disk(0)
    assert vol.transfer(0.0, 0, MB, "write") > 0.0
    assert vol.peak_bw("read") == vol.disks[1].peak_bw("read")
    vol.fail_disk(1)
    with pytest.raises(DataLossError, match="every mirror failed"):
        vol.transfer(1.0, 0, MB, "write")


def test_raid5_degraded_read_slower_and_peak_reduced():
    healthy = RAID5("vol", disks(5))
    degraded = RAID5("vol", disks(5))
    degraded.fail_disk(0)
    t_h = healthy.transfer(0.0, 0, 64 * MB, "read")
    t_d = degraded.transfer(0.0, 0, 64 * MB, "read")
    # reconstruct-read: 4 survivors deliver 3 disks' worth of bandwidth
    assert t_d > t_h
    per = healthy.disks[0].peak_bw("read")
    assert healthy.peak_bw("read") == pytest.approx(per * 4)
    assert degraded.peak_bw("read") == pytest.approx(per * 3)
    # writes: parity is overlapped either way
    assert degraded.peak_bw("write") == healthy.peak_bw("write")


def test_raid5_two_deaths_is_data_loss():
    vol = RAID5("vol", disks(5))
    vol.fail_disk(0)
    vol.fail_disk(1)
    with pytest.raises(DataLossError, match="RAID5 tolerates 1"):
        vol.transfer(0.0, 0, MB, "read")
    with pytest.raises(DataLossError):
        vol.peak_bw("read")


def test_raid6_tolerates_two():
    vol = RAID6("vol", disks(6))
    vol.fail_disk(0)
    vol.fail_disk(1)
    assert vol.transfer(0.0, 0, MB, "read") > 0.0
    vol.fail_disk(2)
    with pytest.raises(DataLossError):
        vol.transfer(1.0, 0, MB, "read")


def test_raid10_pair_loss():
    vol = RAID10("vol", disks(4))
    vol.fail_disk(0)
    assert vol.transfer(0.0, 0, MB, "read") > 0.0  # mirror 1 covers
    vol.fail_disk(1)
    with pytest.raises(DataLossError, match="both mirrors of pair 0"):
        vol.transfer(1.0, 0, MB, "read")


def test_rebuild_competes_with_foreground_io():
    quiet = RAID5("vol", disks(5))
    quiet.fail_disk(0)
    rebuilding = RAID5("vol", disks(5))
    rebuilding.fail_disk(0)
    rebuilding.start_rebuild(overhead=0.5)
    t_q = quiet.transfer(0.0, 0, 64 * MB, "read")
    t_r = rebuilding.transfer(0.0, 0, 64 * MB, "read")
    assert t_r > t_q  # rebuild traffic inflates member transfers
    assert rebuilding.peak_bw("read") == pytest.approx(
        quiet.peak_bw("read") / 1.5)
    rebuilding.finish_rebuild(restored_member=0)
    assert not rebuilding.rebuilding
    assert not rebuilding.degraded


def test_degraded_state_survives_reset_and_keys_fingerprint():
    vol = RAID5("vol", disks(5))
    fp_healthy = vol.fingerprint()
    vol.fail_disk(0)
    vol.reset()
    assert vol.degraded  # a dead disk stays dead between experiments
    assert vol.fingerprint() != fp_healthy  # memo caches must not mix them


# -- scenario machinery --------------------------------------------------------

def _disk_bound_cluster():
    """A cluster whose volume, not network, is the bottleneck."""
    from repro.iosim import (
        EXT4,
        NFS,
        Cluster,
        ComputeNode,
        IONode,
        LinkSpec,
        LocalFS,
    )

    fat_link = LinkSpec(bw_mb_s=10_000.0, latency_s=1e-6, name="fat")
    vol = RAID5("vol", [Disk(f"s{i}", DiskSpec()) for i in range(5)])
    fs = LocalFS("fs", vol, EXT4, cache_mb=1.0)
    server = IONode.make("ion0", fs, link_spec=fat_link)
    nodes = [ComputeNode.make(f"cn{i}", link_spec=fat_link) for i in range(2)]
    return Cluster("disk-bound", nodes, NFS(server), fat_link)


def _jbod_cluster():
    from repro.iosim import (
        EXT4,
        GIGABIT_ETHERNET,
        NFS,
        Cluster,
        ComputeNode,
        IONode,
        LocalFS,
    )

    vol = JBOD("vol", [Disk("j0", DiskSpec())])
    fs = LocalFS("fs", vol, EXT4, cache_mb=1.0)
    server = IONode.make("ion0", fs)
    nodes = [ComputeNode.make(f"cn{i}") for i in range(2)]
    return Cluster("jbod", nodes, NFS(server), GIGABIT_ETHERNET)


def _phases():
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.core.pipeline import characterize_app

    model, _ = characterize_app(synthetic_program, 2, SyntheticParams(),
                                app_name="synthetic")
    return model.phases


def test_degrade_factory_applies_scenario():
    scenario = DegradedScenario.make("one-dead", {0: (0,)}, rebuild=True)
    factory = degrade(_disk_bound_cluster, scenario)
    cluster = factory()
    vol = cluster.globalfs.ions[0].fs.volume
    assert vol.failed == frozenset({0})
    assert vol.rebuilding
    # a fresh build applies the same scenario again
    assert factory().globalfs.ions[0].fs.volume.failed == frozenset({0})


def test_degrade_rejects_bad_ion_index():
    scenario = DegradedScenario.make("bad", {9: (0,)})
    with pytest.raises(IndexError, match="fails I/O node 9"):
        degrade(_disk_bound_cluster, scenario)()


def test_single_disk_scenarios_cover_every_ion():
    scens = single_disk_scenarios(_disk_bound_cluster)
    assert len(scens) == 1
    assert scens[0].failed == ((0, (0,)),)


def test_estimate_degraded_slower_on_disk_bound_cluster():
    phases = _phases()
    nominal = estimate_degraded(phases, _disk_bound_cluster, NOMINAL)
    degraded = estimate_degraded(
        phases, _disk_bound_cluster, DegradedScenario.make("d", {0: (0,)}))
    assert nominal.survives and degraded.survives
    assert degraded.total_time_ch > nominal.total_time_ch


def test_estimate_degraded_reports_data_loss_as_outcome():
    phases = _phases()
    outcome = estimate_degraded(
        phases, _jbod_cluster, DegradedScenario.make("dead", {0: (0,)}))
    assert outcome.lost_data
    assert outcome.total_time_ch == float("inf")
    assert "JBOD" in outcome.detail or "dead member" in outcome.detail


def test_worst_case_selection_prefers_redundancy():
    """Acceptance: ranking by worst-case Time_io flips the choice when
    the nominal winner cannot survive a disk failure."""
    phases = _phases()
    choice = worst_case_selection(
        phases, {"jbod": _jbod_cluster, "raid5": _disk_bound_cluster})
    # The JBOD loses data in its failure scenario -> infinite worst case.
    assert choice.reports["jbod"].worst.total_time_ch == float("inf")
    assert choice.best == "raid5"
    ranking = choice.ranking()
    assert ranking[0][0] == "raid5"
    assert ranking[-1][2] == float("inf")

"""FaultPlan: spec validation, seeded generation, determinism."""

from __future__ import annotations

import math
import os

import pytest

from repro.faults import (
    BROWNOUT,
    DROPOUT,
    FAIL_SLOW,
    FAIL_STOP,
    FaultPlan,
    FaultSpec,
)

# A chaos campaign can sweep the schedule seed through the environment
# (the CI chaos job runs the suite once per seed in its matrix).
SEED = int(os.environ.get("REPRO_FAULT_SEED", "1234"))


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meltdown", "d0")
    with pytest.raises(ValueError, match="non-empty"):
        FaultSpec(FAIL_STOP, "d0", start=5.0, end=5.0)
    with pytest.raises(ValueError, match="slow_factor > 1"):
        FaultSpec(FAIL_SLOW, "d0", slow_factor=0.5)
    with pytest.raises(ValueError, match="bw_factor"):
        FaultSpec(BROWNOUT, "link0", bw_factor=0.0)
    with pytest.raises(ValueError, match="dropout mode"):
        FaultSpec(DROPOUT, "ion0", mode="explode")


def test_spec_live_window():
    spec = FaultSpec(FAIL_SLOW, "d0", start=2.0, end=5.0, slow_factor=2.0)
    assert not spec.live_at(1.9)
    assert spec.live_at(2.0)
    assert spec.live_at(4.999)
    assert not spec.live_at(5.0)


def test_fail_stop_defaults_to_permanent():
    spec = FaultSpec(FAIL_STOP, "d0", start=3.0)
    assert spec.end == math.inf
    assert spec.live_at(1e9)


def test_generate_is_deterministic_per_seed():
    kwargs = dict(disks=["d0", "d1", "d2"], ions=["ion0", "ion1"],
                  links=["cn0.nic"], p_fail_stop=0.9, p_fail_slow=0.9,
                  p_dropout=0.9, p_brownout=0.9)
    a = FaultPlan.generate(SEED, **kwargs)
    b = FaultPlan.generate(SEED, **kwargs)
    assert a.faults == b.faults
    assert a.faults  # high probabilities: something was scheduled
    c = FaultPlan.generate(SEED + 1, **kwargs)
    assert a.faults != c.faults


def test_generate_caps_fail_stops():
    plan = FaultPlan.generate(SEED, disks=[f"d{i}" for i in range(20)],
                              p_fail_stop=1.0, max_fail_stop=1)
    deaths = [s for s in plan.faults if s.kind == FAIL_STOP]
    assert len(deaths) == 1


def test_queries_and_event_log():
    plan = FaultPlan([
        FaultSpec(FAIL_STOP, "d0", start=10.0),
        FaultSpec(FAIL_SLOW, "d1", start=0.0, end=5.0, slow_factor=3.0),
        FaultSpec(DROPOUT, "ion0", start=1.0, end=2.0),
        FaultSpec(BROWNOUT, "cn0.nic", start=0.0, end=4.0, bw_factor=0.5,
                  extra_latency_s=1e-3),
    ])
    assert plan.disk_failed_since("d0", 9.9) is None
    assert plan.disk_failed_since("d0", 10.0) == 10.0
    assert plan.slow_factor("d1", 1.0) == 3.0
    assert plan.slow_factor("d1", 6.0) == 1.0
    assert plan.dropout(("ion0.nic", "ion0"), 1.5) is not None
    assert plan.dropout(("ion0.nic", "ion0"), 2.5) is None
    assert plan.link_state(("cn0.nic",), 3.0) == (0.5, 1e-3)
    assert plan.link_state(("cn0.nic",), 5.0) == (1.0, 0.0)
    # slow_factor and link_state record themselves, deduplicated
    kinds = {e.kind for e in plan.events}
    assert kinds == {FAIL_SLOW, BROWNOUT}
    n = len(plan.events)
    plan.slow_factor("d1", 2.0)
    assert len(plan.events) == n  # same window recorded once
    plan.clear_events()
    assert plan.events == []


def test_event_stream_identical_across_replays():
    """Same plan, same access sequence -> identical event streams."""
    def replay(plan):
        plan.clear_events()
        for t in (0.5, 1.5, 3.0, 6.0):
            plan.slow_factor("d1", t)
            plan.link_state(("cn0.nic",), t)
            plan.failed_members([], t)
        return plan.event_stream()

    plan = FaultPlan([
        FaultSpec(FAIL_SLOW, "d1", start=1.0, end=4.0, slow_factor=2.0),
        FaultSpec(BROWNOUT, "cn0.nic", start=2.0, end=7.0, bw_factor=0.7),
    ])
    assert replay(plan) == replay(plan)

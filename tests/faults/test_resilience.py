"""RetryPolicy / retry_call: bounded, deterministic, selective."""

from __future__ import annotations

import pytest

from repro.faults import TransientFault
from repro.faults.resilience import (
    NO_RETRY,
    RetryPolicy,
    RetryStats,
    retry_call,
)


def flaky(failures: int, exc_factory=lambda: TransientFault("x", 1.0)):
    """A function that fails ``failures`` times, then succeeds."""
    state = {"left": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return "ok"

    fn.state = state
    return fn


def no_sleep(_):
    pass


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_deterministic_exponential_backoff():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.1, backoff_factor=2.0,
                         max_backoff_s=0.3)
    assert [policy.delay(a) for a in (1, 2, 3, 4)] == \
        [0.1, 0.2, 0.3, 0.3]  # capped


def test_retry_absorbs_transient_faults():
    fn = flaky(2)
    stats = RetryStats()
    result = retry_call(fn, policy=RetryPolicy(max_attempts=3),
                        on_retry=stats.note, sleep=no_sleep)
    assert result == "ok"
    assert fn.state["calls"] == 3
    assert stats.retries == 2
    assert "TransientFault" in stats.last_error


def test_exhausted_policy_reraises_last_error():
    fn = flaky(5)
    with pytest.raises(TransientFault):
        retry_call(fn, policy=RetryPolicy(max_attempts=3), sleep=no_sleep)
    assert fn.state["calls"] == 3


def test_non_retryable_errors_propagate_immediately():
    fn = flaky(1, exc_factory=lambda: RuntimeError("logic bug"))
    with pytest.raises(RuntimeError, match="logic bug"):
        retry_call(fn, policy=RetryPolicy(max_attempts=5), sleep=no_sleep)
    assert fn.state["calls"] == 1  # never retried


def test_no_retry_policy_fails_fast():
    fn = flaky(1)
    with pytest.raises(TransientFault):
        retry_call(fn, policy=NO_RETRY, sleep=no_sleep)
    assert fn.state["calls"] == 1


def test_backoff_sleeps_are_paced():
    policy = RetryPolicy(max_attempts=3, backoff_s=0.5, backoff_factor=2.0,
                         max_backoff_s=10.0)
    slept = []
    retry_call(flaky(2), policy=policy, sleep=slept.append)
    assert slept == [0.5, 1.0]


def test_backoff_sequence_is_reproducible():
    """Same policy, same failures -> bit-identical sleep sequence.

    No jitter by design (module docstring): two runs of the same flaky
    workload pace their retries identically, which keeps chaos tests
    and the service's deadline math deterministic.
    """
    policy = RetryPolicy(max_attempts=6, backoff_s=0.05, backoff_factor=3.0,
                         max_backoff_s=0.9)
    runs = []
    for _ in range(2):
        slept = []
        retry_call(flaky(5), policy=policy, sleep=slept.append)
        runs.append(slept)
    assert runs[0] == runs[1] == [policy.delay(a) for a in range(1, 6)]
    assert runs[0][3:] == [0.9, 0.9]  # tail is capped


def test_zero_backoff_never_sleeps():
    policy = RetryPolicy(max_attempts=4, backoff_s=0.0)
    slept = []
    retry_call(flaky(3), policy=policy, sleep=slept.append)
    assert slept == []  # delay == 0 skips the sleep call entirely


def test_constant_backoff_with_unit_factor():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.2, backoff_factor=1.0,
                         max_backoff_s=10.0)
    assert [policy.delay(a) for a in range(1, 5)] == [0.2] * 4


def test_cap_below_base_clamps_every_delay():
    policy = RetryPolicy(max_attempts=4, backoff_s=0.5, backoff_factor=2.0,
                         max_backoff_s=0.1)
    assert [policy.delay(a) for a in range(1, 4)] == [0.1] * 3


def test_policy_is_frozen_and_hashable():
    """Policies are shared across threads by the service; they must be
    immutable values, safe to reuse and to key on."""
    policy = RetryPolicy(max_attempts=2, timeout_s=5.0)
    with pytest.raises(Exception):
        policy.max_attempts = 99
    assert policy == RetryPolicy(max_attempts=2, timeout_s=5.0)
    assert hash(policy) == hash(RetryPolicy(max_attempts=2, timeout_s=5.0))

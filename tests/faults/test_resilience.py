"""RetryPolicy / retry_call: bounded, deterministic, selective."""

from __future__ import annotations

import pytest

from repro.faults import TransientFault
from repro.faults.resilience import (
    NO_RETRY,
    RetryPolicy,
    RetryStats,
    retry_call,
)


def flaky(failures: int, exc_factory=lambda: TransientFault("x", 1.0)):
    """A function that fails ``failures`` times, then succeeds."""
    state = {"left": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return "ok"

    fn.state = state
    return fn


def no_sleep(_):
    pass


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


def test_deterministic_exponential_backoff():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.1, backoff_factor=2.0,
                         max_backoff_s=0.3)
    assert [policy.delay(a) for a in (1, 2, 3, 4)] == \
        [0.1, 0.2, 0.3, 0.3]  # capped


def test_retry_absorbs_transient_faults():
    fn = flaky(2)
    stats = RetryStats()
    result = retry_call(fn, policy=RetryPolicy(max_attempts=3),
                        on_retry=stats.note, sleep=no_sleep)
    assert result == "ok"
    assert fn.state["calls"] == 3
    assert stats.retries == 2
    assert "TransientFault" in stats.last_error


def test_exhausted_policy_reraises_last_error():
    fn = flaky(5)
    with pytest.raises(TransientFault):
        retry_call(fn, policy=RetryPolicy(max_attempts=3), sleep=no_sleep)
    assert fn.state["calls"] == 3


def test_non_retryable_errors_propagate_immediately():
    fn = flaky(1, exc_factory=lambda: RuntimeError("logic bug"))
    with pytest.raises(RuntimeError, match="logic bug"):
        retry_call(fn, policy=RetryPolicy(max_attempts=5), sleep=no_sleep)
    assert fn.state["calls"] == 1  # never retried


def test_no_retry_policy_fails_fast():
    fn = flaky(1)
    with pytest.raises(TransientFault):
        retry_call(fn, policy=NO_RETRY, sleep=no_sleep)
    assert fn.state["calls"] == 1


def test_backoff_sleeps_are_paced():
    policy = RetryPolicy(max_attempts=3, backoff_s=0.5, backoff_factor=2.0,
                         max_backoff_s=10.0)
    slept = []
    retry_call(flaky(2), policy=policy, sleep=slept.append)
    assert slept == [0.5, 1.0]

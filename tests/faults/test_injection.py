"""Fault injection at the iosim injection points.

These tests install plans through ``faults.injected`` and drive the
devices/links directly in virtual time -- the same call paths the
engine's filesystems use.
"""

from __future__ import annotations

import os

import pytest

from repro import faults, obs
from repro.faults import (
    BROWNOUT,
    DROPOUT,
    FAIL_SLOW,
    FAIL_STOP,
    DiskFailure,
    FaultPlan,
    FaultSpec,
    TransientFault,
)
from repro.iosim import MB, Disk, DiskSpec, Link

SEED = int(os.environ.get("REPRO_FAULT_SEED", "1234"))


def fresh_disk(name: str = "d0") -> Disk:
    return Disk(name, DiskSpec())


def test_inactive_plan_costs_nothing():
    assert not faults.ACTIVE
    d = fresh_disk()
    end = d.transfer(0.0, 0, MB, "write")
    assert end > 0.0


def test_fail_stop_disk_raises():
    plan = FaultPlan([FaultSpec(FAIL_STOP, "d0", start=5.0)])
    with faults.injected(plan):
        d = fresh_disk()
        ok = d.transfer(0.0, 0, MB, "write")  # before the death
        assert ok > 0.0
        with pytest.raises(DiskFailure) as ei:
            d.transfer(6.0, 0, MB, "write")
        assert ei.value.device == "d0"
        assert ei.value.since == 5.0
    assert any(e.kind == FAIL_STOP for e in plan.events)


def test_fail_slow_multiplies_cost():
    healthy = fresh_disk().transfer(0.0, 0, 64 * MB, "write")
    plan = FaultPlan([FaultSpec(FAIL_SLOW, "d0", start=0.0, end=100.0,
                                slow_factor=3.0)])
    with faults.injected(plan):
        slow = fresh_disk().transfer(0.0, 0, 64 * MB, "write")
    assert slow == pytest.approx(3.0 * healthy)


def test_dropout_defers_link_send():
    plan = FaultPlan([FaultSpec(DROPOUT, "ion0", start=0.0, end=2.0)])
    with faults.injected(plan):
        link = Link("ion0.nic")  # alias: link answers to its owner node
        begin, end = link.send(0.5, MB)
        assert begin >= 2.0  # stalled until reconnect
    assert any(e.kind == DROPOUT for e in plan.events)


def test_dropout_error_mode_raises_transient():
    plan = FaultPlan([FaultSpec(DROPOUT, "ion0", start=0.0, end=2.0,
                                mode="error")])
    with faults.injected(plan):
        link = Link("ion0.nic")
        with pytest.raises(TransientFault) as ei:
            link.send(0.5, MB)
        assert ei.value.retry_at == 2.0
        # after the window the link works again
        begin, end = link.send(2.5, MB)
        assert begin >= 2.5


def test_brownout_inflates_link_cost():
    link = Link("cn0.nic")
    healthy = link.cost(4 * MB, at=1.0)
    plan = FaultPlan([FaultSpec(BROWNOUT, "cn0.nic", start=0.0, end=10.0,
                                bw_factor=0.5, extra_latency_s=2e-3)])
    with faults.injected(plan):
        browned = Link("cn0.nic").cost(4 * MB, at=1.0)
    assert browned > 2.0 * healthy - 1e-9  # half bandwidth + extra latency
    assert browned == pytest.approx(healthy * 2 + 2e-3 - link.spec.latency_s,
                                    rel=1e-6)


def test_injected_restores_previous_plan():
    outer = FaultPlan()
    inner = FaultPlan()
    with faults.injected(outer):
        assert faults.plan() is outer
        with faults.injected(inner):
            assert faults.plan() is inner
        assert faults.plan() is outer
    assert not faults.ACTIVE


def test_same_seed_same_event_stream_through_devices():
    """Acceptance: fixed-seed schedules yield identical event streams."""
    def run(seed: int) -> list[tuple]:
        plan = FaultPlan.generate(seed, disks=["d0", "d1"],
                                  links=["cn0.nic"],
                                  horizon_s=10.0, p_fail_stop=0.0,
                                  p_fail_slow=1.0, p_brownout=1.0)
        with faults.injected(plan):
            disks = [fresh_disk("d0"), fresh_disk("d1")]
            link = Link("cn0.nic")
            t = 0.0
            for i in range(40):
                t = disks[i % 2].transfer(t, i * MB, MB, "write")
                _, t = link.send(t, MB)
        return plan.event_stream()

    assert run(SEED) == run(SEED)


def test_fault_injections_counted_in_obs():
    plan = FaultPlan([FaultSpec(FAIL_SLOW, "d0", start=0.0, end=10.0,
                                slow_factor=2.0)])
    obs.enable()
    try:
        with faults.injected(plan):
            fresh_disk().transfer(0.0, 0, MB, "write")
        reg = obs.registry()
        fam = next(f for f in reg.families()
                   if f.name == "fault_injections_total")
        assert sum(child.value for _, child in fam.samples()) >= 1
    finally:
        obs.disable()

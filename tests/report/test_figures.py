"""Figure-series generators."""

from __future__ import annotations

import pytest

from repro.core.lap import extract_laps
from repro.core.model import IOModel
from repro.iosim.monitor import DeviceMonitor
from repro.report.figures import (
    device_series_ascii,
    device_series_csv,
    figure2_trace_excerpt,
    figure3_lap,
    figure4_phases,
    figure5_global_pattern,
    figure8_device_series,
    save_figure_artifacts,
)
from repro.tracer import trace_run

MB = 1024 * 1024


def app(ctx):
    fh = ctx.file_open("data")
    for k in range(2):
        ctx.allreduce(1)
        ctx.allreduce(1)
        fh.write_at_all(ctx.rank * 2 * MB + k * MB, MB)
    fh.close()


@pytest.fixture(scope="module")
def traced():
    bundle = trace_run(app, 4)
    return bundle, IOModel.from_trace(bundle, app_name="toy")


@pytest.fixture()
def monitor():
    mon = DeviceMonitor()
    mon.record("sda", 0.0, 1.5, 512 * 1000, "write")
    mon.record("sda", 2.0, 2.5, 512 * 400, "read")
    mon.record("sdb", 0.5, 1.0, 512 * 100, "write")
    return mon


class TestTraceFigures:
    def test_figure2_excerpt(self, traced):
        bundle, _ = traced
        text = figure2_trace_excerpt(bundle, nrows=2, ranks=(0, 1))
        assert text.count("IdP IdF") == 2
        assert "MPI_File_write_at_all" in text

    def test_figure3_lap(self, traced):
        bundle, _ = traced
        entries = extract_laps(bundle.records)
        text = figure3_lap(entries, ranks=(0,))
        assert "OffsetInit" in text
        assert "MPI_File_write_at_all" in text

    def test_figure4_phases(self, traced):
        _, model = traced
        text = figure4_phases(model, nphases=2)
        assert "Phase 1" in text and "Phase 2" in text

    def test_figure5_points(self, traced):
        bundle, model = traced
        points = figure5_global_pattern(bundle, model)
        assert len(points) == len(bundle.records)


class TestDeviceFigures:
    def test_series_per_device(self, monitor):
        series = figure8_device_series(monitor)
        assert set(series) == {"sda", "sdb"}
        assert len(series["sda"]) == 3  # horizon 2.5 s -> 3 buckets

    def test_csv_export(self, monitor):
        csv = device_series_csv(monitor)
        lines = csv.strip().splitlines()
        assert lines[0] == "device,time,wsec_per_s,rsec_per_s,busy_pct"
        assert any(line.startswith("sda,") for line in lines)
        assert any(line.startswith("sdb,") for line in lines)

    def test_ascii_sparkline(self, monitor):
        art = device_series_ascii(monitor, "sda")
        assert "sda" in art and "peak" in art

    def test_ascii_no_activity(self):
        assert "no activity" in device_series_ascii(DeviceMonitor(), "x")


class TestArtifacts:
    def test_save_artifacts(self, traced, monitor, tmp_path):
        bundle, model = traced
        written = save_figure_artifacts(tmp_path, "fig5", bundle=bundle,
                                        model=model, monitor=monitor)
        assert len(written) == 3
        for path in written:
            assert path.exists() and path.stat().st_size > 0

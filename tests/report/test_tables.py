"""Table renderers: structure and content of the paper-style output."""

from __future__ import annotations

import pytest

from repro.core.model import IOModel
from repro.core.pipeline import Evaluation, EvaluationRow
from repro.report.tables import (
    btio_phase_groups,
    configuration_table,
    error_table,
    fmt_bytes,
    phases_table,
    render,
    time_estimation_table,
    usage_table,
)
from repro.clusters import configuration_a, configuration_b
from repro.tracer import trace_run

MB = 1024 * 1024
GB = 1024 * MB


def app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 8 * MB, 8 * MB)
    fh.close()


def make_row(phase_id=1, **kw):
    defaults = dict(phase_id=phase_id, op_label="W", n_operations=128,
                    weight=4 * GB, bw_ch_mb_s=96.0, bw_md_mb_s=93.0,
                    time_ch=42.0, time_md=44.0, bw_pk_mb_s=400.0)
    defaults.update(kw)
    return EvaluationRow(**defaults)


class TestRender:
    def test_alignment_and_separator(self):
        out = render(["a", "long-header"], [["x", "1"], ["yyyy", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = render(["h"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_markdown_mode(self):
        out = render(["a", "b"], [["1", "2"]], title="T", markdown=True)
        lines = out.splitlines()
        assert lines[0] == "**T**"
        assert lines[2].startswith("| a")
        assert set(lines[3]) <= {"|", "-"}
        assert "| 1" in lines[4]

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render(["a", "b"], [["only-one"]])


class TestFmtBytes:
    def test_whole_gb(self):
        assert fmt_bytes(4 * GB) == "4GB"

    def test_fractional_gb(self):
        assert fmt_bytes(int(1.5 * GB)) == "1.5GB"

    def test_mb(self):
        assert fmt_bytes(40 * MB) == "40MB"


class TestConfigurationTable:
    def test_table_vi(self):
        out = configuration_table([configuration_a().description,
                                   configuration_b().description])
        assert "Configuration A" in out and "Configuration B" in out
        assert "NFS Ver 3" in out and "PVFS2 2.8.2" in out
        assert "RAID 5" in out and "JBOD" in out
        assert "Mounting Point" in out


class TestPhasesTable:
    def test_table_viii_style(self):
        model = IOModel.from_trace(trace_run(app, 4), app_name="toy")
        out = phases_table(model)
        assert "InitOffset" in out and "weight" in out
        assert "idP" in out  # the offset expression
        assert "4 write" in out


class TestUsageTable:
    def test_table_ix_style(self):
        ev = Evaluation(config_name="conf-A", rows=[make_row()])
        out = usage_table(ev)
        assert "BW_PK" in out and "BW_MD" in out and "System Usage" in out
        assert "128 W" in out and "4GB" in out
        assert "400" in out and "93" in out
        assert "23" in out  # 93/400 * 100

    def test_missing_peak_renders_dash(self):
        ev = Evaluation(config_name="c", rows=[make_row(bw_pk_mb_s=None)])
        assert "-" in usage_table(ev)


class TestTimeAndErrorTables:
    def test_table_xii_style(self):
        out = time_estimation_table({
            "conf. C": {"Phase 1-50": 1167.40, "Phase 51": 2868.51},
            "Finisterrae": {"Phase 1-50": 932.36, "Phase 51": 844.42},
        })
        assert "1167.40" in out and "844.42" in out
        assert "Time_io(CH) on conf. C" in out

    def test_table_xiii_style(self):
        ev = Evaluation(config_name="conf-C", rows=[
            make_row(1, time_ch=100.0, time_md=110.0),
            make_row(2, time_ch=50.0, time_md=50.0),
            make_row(3, op_label="R", time_ch=200.0, time_md=205.0),
        ])
        out = error_table(ev, {"Phase 1-2": [1, 2], "Phase 3": [3]})
        assert "Phase 1-2" in out and "error_rel" in out
        assert "6%" in out  # |150-160|/160
        assert "2%" in out  # |200-205|/205

    def test_btio_groups(self):
        groups = btio_phase_groups(50)
        assert groups["Phase 1-50"] == list(range(1, 51))
        assert groups["Phase 51"] == [51]

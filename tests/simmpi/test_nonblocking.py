"""Nonblocking MPI-IO: overlap semantics, wait/test, events."""

from __future__ import annotations

import pytest

from repro.simmpi import Engine, IdealPlatform

MB = 1024 * 1024


def run_traced(program, nprocs=1, platform=None):
    events = []
    engine = Engine(nprocs, platform=platform or IdealPlatform())
    engine.add_io_hook(events.append)
    result = engine.run(program)
    return events, engine, result


class TestOverlap:
    def test_compute_overlaps_io(self):
        """iwrite + compute + wait finishes when the LONGER one does."""
        durations = {}

        def program(ctx):
            fh = ctx.file_open("f")
            # 100 MB at 100 MB/s platform -> ~1 s of I/O.
            h = fh.iwrite_at(0, 100 * MB)
            ctx.compute(0.4)  # overlapped computation
            h.wait()
            durations["overlap"] = ctx.clock
            fh.close()

        run_traced(program)
        # ~1.0 s total, NOT 1.4 s.
        assert durations["overlap"] == pytest.approx(1.0, rel=0.05)

    def test_long_compute_hides_io_entirely(self):
        clock = {}

        def program(ctx):
            fh = ctx.file_open("f")
            h = fh.iwrite_at(0, 10 * MB)  # ~0.1 s
            ctx.compute(2.0)
            h.wait()  # already complete: free
            clock["t"] = ctx.clock
            fh.close()

        run_traced(program)
        assert clock["t"] == pytest.approx(2.0, rel=0.05)

    def test_blocking_equivalent_is_slower(self):
        def nb(ctx):
            fh = ctx.file_open("f")
            h = fh.iwrite_at(0, 100 * MB)
            ctx.compute(0.9)
            h.wait()
            fh.close()

        def blocking(ctx):
            fh = ctx.file_open("f")
            fh.write_at(0, 100 * MB)
            ctx.compute(0.9)
            fh.close()

        _, _, r_nb = run_traced(nb)
        _, _, r_b = run_traced(blocking)
        assert r_nb.elapsed < r_b.elapsed


class TestSemantics:
    def test_event_emitted_with_op_name(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.iwrite_at(5, 1024).wait()
            fh.iread_at(5, 1024).wait()
            fh.close()

        events, engine, _ = run_traced(program)
        assert [e.op for e in events] == \
            ["MPI_File_iwrite_at", "MPI_File_iread_at"]
        assert engine.files["f"].meta.used_nonblocking

    def test_double_wait_is_idempotent(self):
        clocks = []

        def program(ctx):
            fh = ctx.file_open("f")
            h = fh.iwrite_at(0, 10 * MB)
            h.wait()
            clocks.append(ctx.clock)
            h.wait()
            clocks.append(ctx.clock)
            fh.close()

        run_traced(program)
        assert clocks[0] == clocks[1]

    def test_mpi_test_polls_completion(self):
        observed = []

        def program(ctx):
            fh = ctx.file_open("f")
            h = fh.iwrite_at(0, 100 * MB)  # ~1 s
            observed.append(h.test())  # immediately: not complete
            ctx.compute(2.0)
            observed.append(h.test())  # after 2 s: complete
            fh.close()

        run_traced(program)
        assert observed == [False, True]

    def test_wait_is_not_a_tick_event(self):
        ticks = {}

        def program(ctx):
            fh = ctx.file_open("f")  # tick 1
            h = fh.iwrite_at(0, 1024)  # tick 2
            h.wait()  # no tick
            ticks["t"] = ctx.tick
            fh.close()

        run_traced(program)
        assert ticks["t"] == 2

    def test_file_grows_at_issue(self):
        def program(ctx):
            fh = ctx.file_open("f")
            h = fh.iwrite_at(0, 4096)
            assert fh.file.size == 4096  # growth visible before wait
            h.wait()
            fh.close()

        run_traced(program)

    def test_nonblocking_respects_queueing(self):
        """Two overlapped writes to the same platform serialize correctly
        through the resource model (no double-booking)."""
        from tests.conftest import make_nfs_cluster

        clock = {}

        def program(ctx):
            fh = ctx.file_open("f")
            h1 = fh.iwrite_at(0, 50 * MB)
            h2 = fh.iwrite_at(50 * MB, 50 * MB)
            h1.wait()
            h2.wait()
            clock["t"] = ctx.clock
            fh.close()

        run_traced(program, platform=make_nfs_cluster())
        # 100 MB through a ~1 GbE NFS path: at least ~0.8 s -- the two
        # requests cannot complete in parallel on the same server link.
        assert clock["t"] > 0.8

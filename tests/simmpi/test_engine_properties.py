"""Property-based engine tests: determinism and invariants under random
SPMD programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import Engine, IdealPlatform

MB = 1024 * 1024

# An op script is a list of (op, arg) interpreted by every rank; being
# identical across ranks, collectives always match.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("compute"), st.floats(0.0, 0.5)),
        st.tuples(st.just("barrier"), st.none()),
        st.tuples(st.just("allreduce"), st.integers(0, 100)),
        st.tuples(st.just("bcast"), st.integers(0, 100)),
        st.tuples(st.just("write"), st.integers(1, 64)),  # KB
        st.tuples(st.just("read"), st.integers(1, 64)),
    ),
    min_size=1,
    max_size=12,
)


def interpret(script):
    def program(ctx):
        fh = ctx.file_open("f")
        for op, arg in script:
            if op == "compute":
                ctx.compute(arg)
            elif op == "barrier":
                ctx.barrier()
            elif op == "allreduce":
                ctx.allreduce(arg)
            elif op == "bcast":
                ctx.bcast(arg if ctx.rank == 0 else None, root=0)
            elif op == "write":
                fh.write_at_all(ctx.rank * 64 * 1024, arg * 1024)
            elif op == "read":
                fh.read_at(ctx.rank * 64 * 1024, arg * 1024)
        fh.close()

    return program


class TestEngineProperties:
    @given(script=OPS, nprocs=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_runs_are_deterministic(self, script, nprocs):
        program = interpret(script)
        runs = []
        for _ in range(2):
            events = []
            engine = Engine(nprocs, platform=IdealPlatform())
            engine.add_io_hook(events.append)
            result = engine.run(program)
            runs.append((result.clocks, result.ticks, events))
        assert runs[0] == runs[1]

    @given(script=OPS, nprocs=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_clocks_nonnegative_and_ticks_uniform(self, script, nprocs):
        program = interpret(script)
        result = Engine(nprocs, platform=IdealPlatform()).run(program)
        assert all(c >= 0.0 for c in result.clocks.values())
        # Identical scripts -> identical per-rank MPI event counts.
        assert len(set(result.ticks.values())) == 1

    @given(script=OPS)
    @settings(max_examples=25, deadline=None)
    def test_event_count_matches_script(self, script):
        events = []
        engine = Engine(2, platform=IdealPlatform())
        engine.add_io_hook(events.append)
        engine.run(interpret(script))
        expected_io = sum(1 for op, _ in script if op in ("write", "read"))
        assert len(events) == 2 * expected_io

    @given(script=OPS)
    @settings(max_examples=25, deadline=None)
    def test_virtual_time_monotone_per_rank(self, script):
        events = []
        engine = Engine(2, platform=IdealPlatform())
        engine.add_io_hook(events.append)
        engine.run(interpret(script))
        for rank in (0, 1):
            times = [e.time for e in events if e.rank == rank]
            assert times == sorted(times)

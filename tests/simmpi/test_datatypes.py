"""Datatype subset: sizes, extents, segments and view mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.datatypes import (
    BYTE,
    DOUBLE,
    Basic,
    Contiguous,
    FileView,
    Resized,
    Vector,
)
from repro.simmpi.errors import MPIUsageError


class TestBasic:
    def test_byte_and_double(self):
        assert BYTE.size == BYTE.extent == 1
        assert DOUBLE.size == DOUBLE.extent == 8

    def test_custom_etype(self):
        t = Basic(40, "record")
        assert t.size == 40 and t.is_dense
        assert t.segments() == [(0, 40)]

    def test_nonpositive_rejected(self):
        with pytest.raises(MPIUsageError):
            Basic(0)


class TestContiguous:
    def test_dense_collapse(self):
        t = Contiguous(1000, Basic(40))
        assert t.size == t.extent == 40_000
        assert t.segments() == [(0, 40_000)]

    def test_over_sparse_base(self):
        sparse = Vector(2, 1, 3, BYTE)  # bytes at 0 and 3
        t = Contiguous(2, sparse)
        assert t.size == 4
        # extents tile: second copy starts at sparse.extent = 4
        assert t.segments() == [(0, 1), (3, 2), (7, 1)]

    def test_zero_count_rejected(self):
        with pytest.raises(MPIUsageError):
            Contiguous(0)


class TestVector:
    def test_basic_shape(self):
        t = Vector(count=3, blocklen=2, stride=5, base=BYTE)
        assert t.size == 6
        assert t.extent == 2 * 5 + 2  # last block ends at 12
        assert t.segments() == [(0, 2), (5, 2), (10, 2)]

    def test_stride_lt_blocklen_rejected(self):
        with pytest.raises(MPIUsageError):
            Vector(2, 4, 3)

    def test_contiguous_degenerate(self):
        t = Vector(count=4, blocklen=2, stride=2, base=BYTE)
        assert t.segments() == [(0, 8)]

    def test_etype_scaling(self):
        t = Vector(count=2, blocklen=3, stride=10, base=Basic(40))
        assert t.size == 2 * 3 * 40
        assert t.segments() == [(0, 120), (400, 120)]


class TestResized:
    def test_padding(self):
        t = Resized(Contiguous(4), extent=10)
        assert t.size == 4 and t.extent == 10
        assert t.segments() == [(0, 4)]

    def test_truncation_rejected(self):
        with pytest.raises(MPIUsageError):
            Resized(Contiguous(4), extent=2)


def brute_force_map(view: FileView, view_off: int, nbytes: int) -> list[int]:
    """Reference: absolute offset of each data byte, one by one."""
    ft = view.filetype
    segs = ft.segments()
    out = []
    for b in range(view_off, view_off + nbytes):
        tile, in_tile = divmod(b, ft.size)
        base = view.disp + tile * ft.extent
        consumed = 0
        for off, ln in segs:
            if consumed + ln > in_tile:
                out.append(base + off + (in_tile - consumed))
                break
            consumed += ln
    return out


def runs_to_bytes(runs: list[tuple[int, int]]) -> list[int]:
    out = []
    for off, ln in runs:
        out.extend(range(off, off + ln))
    return out


class TestFileView:
    def test_contiguous_identity(self):
        v = FileView()
        assert v.is_contiguous
        assert v.map_range(100, 50) == [(100, 50)]

    def test_displacement(self):
        v = FileView(disp=1000)
        assert v.map_range(0, 10) == [(1000, 10)]

    def test_strided_mapping(self):
        # 4 processes, blocks of 10 bytes: process 1's view.
        ft = Vector(count=5, blocklen=10, stride=40, base=BYTE)
        v = FileView(disp=10, etype=BYTE, filetype=ft)
        assert v.map_range(0, 10) == [(10, 10)]
        assert v.map_range(10, 10) == [(50, 10)]
        assert v.map_range(5, 10) == [(15, 5), (50, 5)]  # crosses blocks

    def test_etype_mismatch_rejected(self):
        with pytest.raises(MPIUsageError):
            FileView(etype=Basic(7), filetype=Vector(2, 3, 5, BYTE))

    def test_negative_disp_rejected(self):
        with pytest.raises(MPIUsageError):
            FileView(disp=-1)

    def test_empty_access(self):
        v = FileView(disp=5)
        assert v.map_range(0, 0) == []

    def test_extent_of(self):
        ft = Vector(count=3, blocklen=4, stride=10, base=BYTE)
        v = FileView(disp=0, filetype=ft)
        assert v.extent_of(0, 12) == (0, 24)

    @given(
        count=st.integers(1, 6),
        blocklen=st.integers(1, 8),
        extra_stride=st.integers(0, 8),
        disp=st.integers(0, 50),
        view_off=st.integers(0, 60),
        nbytes=st.integers(1, 80),
    )
    @settings(max_examples=120, deadline=None)
    def test_map_range_matches_bytewise_reference(self, count, blocklen,
                                                  extra_stride, disp,
                                                  view_off, nbytes):
        ft = Vector(count=count, blocklen=blocklen,
                    stride=blocklen + extra_stride, base=BYTE)
        v = FileView(disp=disp, etype=BYTE, filetype=ft)
        runs = v.map_range(view_off, nbytes)
        assert runs_to_bytes(runs) == brute_force_map(v, view_off, nbytes)
        # Coalesced: disjoint, sorted, no zero-length runs.
        for (o1, l1), (o2, l2) in zip(runs, runs[1:]):
            assert o1 + l1 < o2
        assert all(ln > 0 for _, ln in runs)

"""Golden-trace equivalence: coroutine vs threaded scheduler.

The coroutine scheduler replaces the thread-per-rank core but must
preserve the exact deterministic ``(virtual clock, rank id)`` ordering.
These tests run every seed app under both schedulers and assert
bit-identical I/O event streams, final clocks and tick maps.
"""

from __future__ import annotations

import pytest

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.ior import IORParams, ior_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.apps.roms import ROMSParams, roms_program
from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.simmpi.engine import Engine, IdealPlatform
from repro.simmpi.errors import MPIUsageError
from repro.simmpi.fileio import IOEvent

from tests.conftest import make_nfs_cluster, make_pvfs_cluster


def run_mode(mode, program, nprocs, platform, *args):
    events: list[IOEvent] = []
    engine = Engine(nprocs, platform=platform, mode=mode)
    engine.add_io_hook(events.append)
    run = engine.run(program, *args)
    return events, run


APPS = [
    ("ior", ior_program, 4,
     (IORParams(np=4, block_size=4 * 1024 * 1024,
                transfer_size=1024 * 1024),)),
    ("ior-collective", ior_program, 4,
     (IORParams(np=4, block_size=4 * 1024 * 1024,
                transfer_size=1024 * 1024, collective=True),)),
    ("ior-unique", ior_program, 4,
     (IORParams(np=4, block_size=4 * 1024 * 1024,
                transfer_size=1024 * 1024, file_per_process=True,
                random_offsets=True),)),
    ("madbench2", madbench2_program, 4,
     (MADbench2Params(kpix=1, nbin=4, busy_seconds=0.01),)),
    ("madbench2-gangs", madbench2_program, 4,
     (MADbench2Params(kpix=1, nbin=4, busy_seconds=0.01, ngang=2),)),
    ("btio", btio_program, 4,
     (BTIOParams(cls="A"),)),
    ("synthetic", synthetic_program, 4,
     (SyntheticParams(nrep=6),)),
    ("roms", roms_program, 4,
     (ROMSParams(nsteps=8, history_every=4),)),
]


@pytest.mark.parametrize("platform_maker", [IdealPlatform, make_nfs_cluster,
                                            make_pvfs_cluster],
                         ids=["ideal", "nfs", "pvfs"])
@pytest.mark.parametrize("name,program,nprocs,args", APPS,
                         ids=[a[0] for a in APPS])
def test_bit_identical_across_schedulers(name, program, nprocs, args,
                                         platform_maker):
    ev_thr, run_thr = run_mode("threads", program, nprocs,
                               platform_maker(), *args)
    ev_coro, run_coro = run_mode("coro", program, nprocs,
                                 platform_maker(), *args)

    assert run_thr.clocks == run_coro.clocks  # bit-identical, no tolerance
    assert run_thr.ticks == run_coro.ticks
    assert len(ev_thr) == len(ev_coro)
    for a, b in zip(ev_thr, ev_coro):
        assert a == b


def test_auto_mode_picks_coro_for_generators():
    engine = Engine(2, platform=IdealPlatform())

    def plain(ctx):
        ctx.barrier()

    engine.run(plain)  # callable -> threaded shell, still works

    engine2 = Engine(2, platform=IdealPlatform(), mode="coro")

    def gen(ctx):
        yield from ctx.barrier()

    engine2.run(gen)


def test_coro_mode_rejects_plain_callables():
    engine = Engine(2, platform=IdealPlatform(), mode="coro")

    def plain(ctx):
        ctx.barrier()

    with pytest.raises(MPIUsageError):
        engine.run(plain)


def test_invalid_mode_rejected():
    with pytest.raises(MPIUsageError):
        Engine(2, platform=IdealPlatform(), mode="fibers")

"""Engine semantics: determinism, clocks, ticks, collectives, p2p, errors."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    CollectiveMismatch,
    DeadlockError,
    Engine,
    IdealPlatform,
    MPIUsageError,
    RankFailedError,
)


def run(program, nprocs=4, *args, platform=None):
    return Engine(nprocs, platform=platform or IdealPlatform()).run(program, *args)


class TestBasics:
    def test_requires_positive_nprocs(self):
        with pytest.raises(MPIUsageError):
            Engine(0)

    def test_rank_and_size(self):
        seen = []

        def program(ctx):
            seen.append((ctx.rank, ctx.size))

        run(program, 3)
        assert sorted(seen) == [(0, 3), (1, 3), (2, 3)]

    def test_compute_advances_clock_without_tick(self):
        clocks, ticks = {}, {}

        def program(ctx):
            ctx.compute(1.5)
            clocks[ctx.rank] = ctx.clock
            ticks[ctx.rank] = ctx.tick

        run(program, 2)
        assert clocks == {0: 1.5, 1: 1.5}
        assert ticks == {0: 0, 1: 0}

    def test_negative_compute_rejected(self):
        def program(ctx):
            ctx.compute(-1.0)

        with pytest.raises(MPIUsageError):
            run(program, 1)

    def test_elapsed_is_max_clock(self):
        def program(ctx):
            ctx.compute(float(ctx.rank))

        result = run(program, 4)
        assert result.elapsed == pytest.approx(3.0)

    def test_rank_exception_propagates(self):
        def program(ctx):
            if ctx.rank == 2:
                raise ValueError("boom")
            ctx.compute(0.1)

        with pytest.raises(RankFailedError) as exc_info:
            run(program, 4)
        assert exc_info.value.rank == 2
        assert isinstance(exc_info.value.original, ValueError)


class TestDeterminism:
    def test_identical_runs(self):
        def program(ctx):
            for i in range(5):
                ctx.compute(0.01 * (ctx.rank + 1))
                ctx.allreduce(ctx.rank)
                ctx.barrier()

        r1 = run(program, 4)
        r2 = run(program, 4)
        assert r1.clocks == r2.clocks
        assert r1.ticks == r2.ticks

    def test_io_event_streams_identical(self, nfs_cluster):
        from tests.conftest import make_nfs_cluster

        def program(ctx):
            fh = ctx.file_open("f")
            for i in range(3):
                fh.write_at_all(ctx.rank * 4096 + i * 1024, 1024)
            fh.close()

        streams = []
        for _ in range(2):
            events = []
            eng = Engine(4, platform=make_nfs_cluster())
            eng.add_io_hook(events.append)
            eng.run(program)
            streams.append(events)
        assert streams[0] == streams[1]


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        clocks = {}

        def program(ctx):
            ctx.compute(float(ctx.rank))  # ranks drift apart
            ctx.barrier()
            clocks[ctx.rank] = ctx.clock

        run(program, 4)
        assert len(set(clocks.values())) == 1
        assert min(clocks.values()) >= 3.0  # barrier waits for slowest

    def test_bcast_delivers_root_value(self):
        got = {}

        def program(ctx):
            value = f"payload-{ctx.rank}" if ctx.rank == 1 else None
            got[ctx.rank] = ctx.bcast(value, root=1)

        run(program, 4)
        assert all(v == "payload-1" for v in got.values())

    def test_allreduce_sum_and_custom_op(self):
        sums, maxes = {}, {}

        def program(ctx):
            sums[ctx.rank] = ctx.allreduce(ctx.rank + 1)
            maxes[ctx.rank] = ctx.allreduce(ctx.rank, op=max)

        run(program, 4)
        assert set(sums.values()) == {10}
        assert set(maxes.values()) == {3}

    def test_gather_only_root_receives(self):
        got = {}

        def program(ctx):
            got[ctx.rank] = ctx.gather(ctx.rank * 10, root=2)

        run(program, 4)
        assert got[2] == [0, 10, 20, 30]
        assert got[0] is got[1] is got[3] is None

    def test_ticks_count_mpi_events(self):
        ticks = {}

        def program(ctx):
            ctx.barrier()
            ctx.allreduce(1)
            ctx.compute(0.1)  # not an MPI event
            ctx.barrier()
            ticks[ctx.rank] = ctx.tick

        run(program, 2)
        assert ticks == {0: 3, 1: 3}

    def test_collective_mismatch_detected(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.barrier()
            else:
                ctx.allreduce(1)

        with pytest.raises(CollectiveMismatch):
            run(program, 2)

    def test_split_creates_disjoint_comms(self):
        comms = {}

        def program(ctx):
            comm = ctx.split(color=ctx.rank % 2)
            comms[ctx.rank] = comm
            ctx.barrier(comm)

        run(program, 4)
        assert comms[0].world_ranks == (0, 2)
        assert comms[1].world_ranks == (1, 3)
        assert comms[0].rank(2) == 1

    def test_subset_collective_does_not_block_others(self):
        """Ranks outside a split comm proceed past the subset's barrier."""
        done = []

        def program(ctx):
            comm = ctx.split(color=0 if ctx.rank < 2 else 1)
            for _ in range(3):
                ctx.barrier(comm)
            done.append(ctx.rank)

        run(program, 4)
        assert sorted(done) == [0, 1, 2, 3]

    def test_deadlock_detected_when_subset_enters_world_barrier(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.barrier()
            # other ranks simply finish

        with pytest.raises(DeadlockError):
            run(program, 2)


class TestPointToPoint:
    def test_send_recv_payload(self):
        got = {}

        def program(ctx):
            if ctx.rank == 0:
                ctx.send(1, nbytes=64, payload={"x": 42})
            elif ctx.rank == 1:
                got[1] = ctx.recv(0)

        run(program, 2)
        assert got[1] == {"x": 42}

    def test_rendezvous_synchronizes_clocks(self):
        clocks = {}

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(2.0)
                ctx.send(1, nbytes=8)
            else:
                ctx.recv(0)
            clocks[ctx.rank] = ctx.clock

        run(program, 2)
        assert clocks[1] >= 2.0  # receiver waited for the sender

    def test_self_send_rejected(self):
        def program(ctx):
            ctx.send(ctx.rank, nbytes=8)

        with pytest.raises(MPIUsageError):
            run(program, 2)

    def test_peer_out_of_range(self):
        def program(ctx):
            ctx.recv(99)

        with pytest.raises(MPIUsageError):
            run(program, 2)

    def test_tagged_messages_matched_by_tag(self):
        # Sends are rendezvous (synchronous), so the orders must agree;
        # tags still select which pending message a recv matches.
        got = {}

        def program(ctx):
            if ctx.rank == 0:
                ctx.send(1, nbytes=8, tag=7, payload="seven")
                ctx.send(1, nbytes=8, tag=9, payload="nine")
            else:
                got["t7"] = ctx.recv(0, tag=7)
                got["t9"] = ctx.recv(0, tag=9)

        run(program, 2)
        assert got == {"t7": "seven", "t9": "nine"}

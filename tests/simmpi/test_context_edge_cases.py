"""Context/engine edge cases: comm membership, roots, empty worlds."""

from __future__ import annotations

import pytest

from repro.simmpi import Comm, Engine, IdealPlatform, MPIUsageError


def run(program, nprocs=4):
    return Engine(nprocs, platform=IdealPlatform()).run(program)


class TestCommValidation:
    def test_duplicate_ranks_rejected(self):
        with pytest.raises(MPIUsageError):
            Comm([0, 1, 1])

    def test_rank_translation(self):
        comm = Comm([3, 5, 9])
        assert comm.size == 3
        assert comm.rank(5) == 1
        with pytest.raises(MPIUsageError):
            comm.rank(4)

    def test_membership(self):
        comm = Comm([0, 2])
        assert 2 in comm and 1 not in comm

    def test_collective_on_foreign_comm_rejected(self):
        def program(ctx):
            foreign = Comm([ctx.size + 1, ctx.size + 2])
            ctx.barrier(foreign)

        with pytest.raises(MPIUsageError):
            run(program, 2)


class TestRootValidation:
    def test_bcast_root_outside_comm(self):
        def program(ctx):
            sub = ctx.split(color=0 if ctx.rank < 2 else 1)
            if ctx.rank < 2:
                # Root 3 is not in the {0,1} subcomm.
                ctx.bcast("x", root=3, comm=sub)

        with pytest.raises(MPIUsageError):
            run(program, 4)

    def test_reduce_root_outside_comm(self):
        def program(ctx):
            sub = ctx.split(color=0 if ctx.rank < 2 else 1)
            if ctx.rank < 2:
                ctx.reduce(1, root=2, comm=sub)

        with pytest.raises(MPIUsageError):
            run(program, 4)


class TestSingleRankWorld:
    def test_collectives_trivially_complete(self):
        got = {}

        def program(ctx):
            ctx.barrier()
            got["sum"] = ctx.allreduce(7)
            got["bcast"] = ctx.bcast("solo")
            got["gather"] = ctx.gather(1, root=0)
            got["all"] = ctx.allgather("x")

        run(program, 1)
        assert got == {"sum": 7, "bcast": "solo", "gather": [1], "all": ["x"]}

    def test_io_on_single_rank(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at_all(0, 4096)
            fh.read_at_all(0, 4096)
            fh.close()

        result = run(program, 1)
        assert result.elapsed > 0


class TestRepeatedRuns:
    def test_engine_instance_not_reusable_state_isolated(self):
        """Two engines never share file registries or clocks."""
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_shared(100)
            fh.close()

        e1 = Engine(2, platform=IdealPlatform())
        e1.run(program)
        e2 = Engine(2, platform=IdealPlatform())
        e2.run(program)
        assert e1.files["f"].shared_pointer == 200
        assert e2.files["f"].shared_pointer == 200  # fresh, not 400

    def test_many_ranks(self):
        """A 32-rank world schedules deterministically."""
        def program(ctx):
            ctx.allreduce(ctx.rank)
            fh = ctx.file_open("f")
            fh.write_at_all(ctx.rank * 1024, 1024)
            fh.close()

        r1 = run(program, 32)
        r2 = run(program, 32)
        assert r1.clocks == r2.clocks

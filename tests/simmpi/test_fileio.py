"""MPI-IO layer: op names, pointers, etype units, views, metadata, errors."""

from __future__ import annotations

import pytest

from repro.simmpi import Engine, IdealPlatform, MPIFileError, MPIUsageError
from repro.simmpi.datatypes import Basic, Vector


def run_traced(program, nprocs=2, *args):
    events = []
    engine = Engine(nprocs, platform=IdealPlatform())
    engine.add_io_hook(events.append)
    engine.run(program, *args)
    return events, engine


class TestExplicitOffset:
    def test_write_at_event(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at(100, 50)
            fh.close()

        events, _ = run_traced(program, 1)
        (e,) = events
        assert e.op == "MPI_File_write_at"
        assert e.offset == 100 and e.abs_offset == 100
        assert e.request_size == 50 and e.kind == "write"
        assert not e.collective

    def test_collective_names(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at_all(0, 10)
            fh.read_at_all(0, 10)
            fh.close()

        events, _ = run_traced(program, 2)
        names = {e.op for e in events}
        assert names == {"MPI_File_write_at_all", "MPI_File_read_at_all"}
        assert all(e.collective for e in events)

    def test_etype_units(self):
        """Explicit offsets count etypes; Fig. 2's 265302/10612080 pairing."""
        def program(ctx):
            fh = ctx.file_open("f")
            fh.set_view(disp=0, etype=Basic(40))
            fh.write_at(265302, 10612080)
            fh.close()

        events, _ = run_traced(program, 1)
        (e,) = events
        assert e.offset == 265302
        assert e.abs_offset == 265302 * 40
        assert e.request_size == 10612080


class TestIndividualPointer:
    def test_sequential_writes_advance_pointer(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.seek(10)
            fh.write(5)
            fh.write(5)
            fh.close()

        events, _ = run_traced(program, 1)
        assert [e.offset for e in events] == [10, 15]
        assert events[0].op == "MPI_File_write"

    def test_seek_whence(self):
        offsets = []

        def program(ctx):
            fh = ctx.file_open("f")
            fh.seek(100)
            fh.seek(20, "cur")
            offsets.append(fh.individual_pointer)
            fh.write(10)
            fh.seek(-5, "cur")
            offsets.append(fh.individual_pointer)
            fh.close()

        run_traced(program, 1)
        assert offsets == [120, 125]

    def test_seek_negative_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.seek(-1)

        with pytest.raises(MPIFileError):
            run_traced(program, 1)

    def test_pointer_in_etype_units(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.set_view(etype=Basic(8))
            fh.write(16)  # 2 etypes
            assert fh.individual_pointer == 2
            fh.close()

        run_traced(program, 1)

    def test_seek_and_view_are_not_tick_events(self):
        ticks = {}

        def program(ctx):
            fh = ctx.file_open("f")  # 1 tick (collective open)
            fh.seek(10)
            fh.set_view()
            fh.write(4)  # 1 tick
            fh.close()
            ticks[ctx.rank] = ctx.tick

        run_traced(program, 1)
        assert ticks[0] == 2


class TestSharedPointer:
    def test_shared_pointer_serializes(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_shared(100)

        events, engine = run_traced(program, 4)
        offsets = sorted(e.offset for e in events)
        assert offsets == [0, 100, 200, 300]
        assert engine.files["f"].shared_pointer == 400

    def test_shared_op_name(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_shared(10)
            fh.read_shared(10)

        events, _ = run_traced(program, 1)
        assert [e.op for e in events] == [
            "MPI_File_write_shared", "MPI_File_read_shared"]


class TestValidation:
    def test_write_on_readonly_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f", mode="r")
            fh.write_at(0, 10)

        with pytest.raises(MPIFileError):
            run_traced(program, 1)

    def test_read_on_writeonly_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f", mode="w")
            fh.read_at(0, 10)

        with pytest.raises(MPIFileError):
            run_traced(program, 1)

    def test_closed_file_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.close()
            fh.write_at(0, 10)

        with pytest.raises(MPIFileError):
            run_traced(program, 1)

    def test_zero_size_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at(0, 0)

        with pytest.raises(MPIUsageError):
            run_traced(program, 1)

    def test_partial_etype_rejected(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.set_view(etype=Basic(8))
            fh.write_at(0, 12)  # 1.5 etypes

        with pytest.raises(MPIUsageError):
            run_traced(program, 1)


class TestFilesAndMetadata:
    def test_unique_files_get_rank_suffix(self):
        def program(ctx):
            fh = ctx.file_open("out", unique=True)
            fh.write_at(0, 10)

        events, engine = run_traced(program, 3)
        assert sorted(engine.files) == ["out.0", "out.1", "out.2"]
        assert all(e.unique_file for e in events)

    def test_file_size_grows_to_written_extent(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at(ctx.rank * 100, 100)

        _, engine = run_traced(program, 4)
        assert engine.files["f"].size == 400

    def test_metadata_flags(self):
        def program(ctx):
            fh = ctx.file_open("f")
            fh.write_at_all(0, 8)
            fh.seek(ctx.rank)
            fh.read(4)

        _, engine = run_traced(program, 2)
        meta = engine.files["f"].meta
        assert meta.used_explicit_offset
        assert meta.used_individual_pointer
        assert meta.used_collective and meta.used_noncollective
        assert meta.access_mode == "sequential"

    def test_strided_view_sets_access_mode(self):
        def program(ctx):
            fh = ctx.file_open("f")
            et = Basic(40)
            fh.set_view(disp=ctx.rank * 40,
                        etype=et, filetype=Vector(4, 1, 2, et))
            fh.write_at(0, 40)

        _, engine = run_traced(program, 2)
        meta = engine.files["f"].meta
        assert meta.access_mode == "strided"
        assert meta.etype_size == 40

    def test_strided_view_maps_collective_runs(self):
        """Each rank's strided block lands at its interleaved position."""
        def program(ctx):
            et = Basic(10)
            fh = ctx.file_open("f")
            fh.set_view(disp=ctx.rank * 10,
                        etype=et, filetype=Vector(3, 1, 2, et))
            fh.write_at_all(1, 10)  # second block of each rank

        events, _ = run_traced(program, 2)
        by_rank = {e.rank: e.abs_offset for e in events}
        assert by_rank == {0: 20, 1: 30}

"""Extra collectives (reduce/scatter/allgather/sendrecv) and Subarray."""

from __future__ import annotations

import pytest

from repro.simmpi import Basic, Engine, IdealPlatform, MPIUsageError, Subarray
from repro.simmpi.datatypes import FileView


def run(program, nprocs=4):
    return Engine(nprocs, platform=IdealPlatform()).run(program)


class TestReduce:
    def test_only_root_gets_result(self):
        got = {}

        def program(ctx):
            got[ctx.rank] = ctx.reduce(ctx.rank + 1, root=2)

        run(program)
        assert got[2] == 10
        assert got[0] is got[1] is got[3] is None

    def test_custom_op(self):
        got = {}

        def program(ctx):
            got[ctx.rank] = ctx.reduce(ctx.rank, root=0, op=max)

        run(program)
        assert got[0] == 3


class TestScatter:
    def test_each_rank_gets_its_slot(self):
        got = {}

        def program(ctx):
            values = [f"v{i}" for i in range(ctx.size)] if ctx.rank == 1 else None
            got[ctx.rank] = ctx.scatter(values, root=1)

        run(program)
        assert got == {0: "v0", 1: "v1", 2: "v2", 3: "v3"}

    def test_wrong_length_rejected(self):
        def program(ctx):
            values = [1, 2] if ctx.rank == 0 else None
            ctx.scatter(values, root=0)

        with pytest.raises(MPIUsageError):
            run(program)


class TestAllgather:
    def test_everyone_gets_everything(self):
        got = {}

        def program(ctx):
            got[ctx.rank] = ctx.allgather(ctx.rank * 10)

        run(program)
        assert all(v == [0, 10, 20, 30] for v in got.values())


class TestSendrecv:
    def test_ring_exchange_even(self):
        got = {}

        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            got[ctx.rank] = ctx.sendrecv(dest=right, source=left,
                                         payload=f"from{ctx.rank}")

        run(program, 4)
        assert got == {0: "from3", 1: "from0", 2: "from1", 3: "from2"}

    def test_ring_exchange_odd(self):
        got = {}

        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            got[ctx.rank] = ctx.sendrecv(dest=right, source=left,
                                         payload=ctx.rank)

        run(program, 5)
        assert got == {r: (r - 1) % 5 for r in range(5)}

    def test_pairwise_swap(self):
        got = {}

        def program(ctx):
            peer = ctx.rank ^ 1
            got[ctx.rank] = ctx.sendrecv(dest=peer, source=peer,
                                         payload=ctx.rank)

        run(program, 4)
        assert got == {0: 1, 1: 0, 2: 3, 3: 2}


class TestSubarray:
    def test_2d_block(self):
        t = Subarray((4, 6), (2, 3), (1, 2), Basic(8))
        assert t.size == 2 * 3 * 8
        assert t.extent == 4 * 6 * 8
        assert t.segments() == [(64, 24), (112, 24)]

    def test_3d_block_row_count(self):
        t = Subarray((4, 4, 8), (2, 2, 8), (0, 0, 0))
        # Innermost dim fully covered -> rows coalesce pairwise.
        segs = t.segments()
        assert sum(ln for _, ln in segs) == t.size
        assert all(ln >= 8 for _, ln in segs)

    def test_full_array_is_one_segment(self):
        t = Subarray((4, 6), (4, 6), (0, 0))
        assert t.segments() == [(0, 24)]
        assert t.is_dense

    def test_out_of_bounds_rejected(self):
        with pytest.raises(MPIUsageError):
            Subarray((4, 4), (2, 2), (3, 0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(MPIUsageError):
            Subarray((4, 4), (2,), (0, 0))

    def test_in_file_view(self):
        """A 2-proc column decomposition of a 4x4 array of doubles."""
        t0 = Subarray((4, 4), (4, 2), (0, 0), Basic(8))
        view = FileView(disp=0, etype=Basic(8), filetype=t0)
        runs = view.map_range(0, t0.size)
        # 4 rows of 2 doubles each at global row starts.
        assert runs == [(0, 16), (32, 16), (64, 16), (96, 16)]

    def test_btio_style_decomposition_covers_file(self):
        """4 procs x (2x2 of a 4x4): disjoint cover of the global array."""
        covered = set()
        for p in range(4):
            r0, c0 = (p // 2) * 2, (p % 2) * 2
            t = Subarray((4, 4), (2, 2), (r0, c0))
            for off, ln in t.segments():
                covered.update(range(off, off + ln))
        assert covered == set(range(16))

"""Kill-and-resume smoke test: the CI chaos job's acceptance criterion.

A checkpointed sweep is hard-killed mid-flight through the
``REPRO_CHAOS_KILL_AFTER`` hook, then resumed; the resumed run must
write a byte-identical result file to an uninterrupted run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.core.sweep import CHAOS_EXIT_CODE, CHAOS_KILL_ENV

SRC = str(Path(__file__).resolve().parents[2] / "src")

# The driven workload: a deterministic 6-job sweep whose result file is
# the canonical JSON of every job's output.  Runs in a subprocess so the
# chaos hook's os._exit() cannot take the test runner down with it.
SCRIPT = """
import json, sys
from pathlib import Path
from repro.core.sweep import sweep_map

def job(i):
    acc = 0.0
    for k in range(1, 400):
        acc += (i * k) % 7 / k
    return {"job": i, "acc": acc}

out, ckpt, resume = sys.argv[1], sys.argv[2], sys.argv[3] == "resume"
jobs = {f"cfg{i}": (i,) for i in range(6)}
results = sweep_map(job, jobs, checkpoint_dir=ckpt, resume=resume)
Path(out).write_text(json.dumps(results, sort_keys=True, indent=1))
"""


def run_sweep(out: Path, ckpt: Path, *, resume: bool = False,
              kill_after: int | None = None) -> subprocess.CompletedProcess:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CHAOS_KILL_ENV, None)
    if kill_after is not None:
        env[CHAOS_KILL_ENV] = str(kill_after)
    return subprocess.run(
        [sys.executable, "-c", SCRIPT, str(out),
         str(ckpt), "resume" if resume else "fresh"],
        env=env, capture_output=True, text=True, timeout=120)


def test_kill_and_resume_is_bit_identical(tmp_path):
    # 1. the reference: an uninterrupted run
    ref_out = tmp_path / "reference.json"
    proc = run_sweep(ref_out, tmp_path / "ck_ref")
    assert proc.returncode == 0, proc.stderr
    reference = ref_out.read_bytes()

    # 2. chaos: hard-kill after the third checkpoint write
    chaos_out = tmp_path / "chaos.json"
    chaos_ckpt = tmp_path / "ck_chaos"
    proc = run_sweep(chaos_out, chaos_ckpt, kill_after=3)
    assert proc.returncode == CHAOS_EXIT_CODE, proc.stderr
    assert not chaos_out.exists()  # died before writing results
    survivors = list(chaos_ckpt.glob("*.ckpt"))
    assert len(survivors) == 3  # exactly the checkpoints written pre-kill

    # 3. resume from the survivors: must match the reference byte-for-byte
    proc = run_sweep(chaos_out, chaos_ckpt, resume=True)
    assert proc.returncode == 0, proc.stderr
    assert chaos_out.read_bytes() == reference


def test_chaos_hook_inert_without_checkpoint_dir(tmp_path):
    """The kill switch only arms when a checkpoint directory is active,
    so stray environment variables cannot kill un-checkpointed runs."""
    script = """
import sys
from repro.core.sweep import sweep_map
assert sweep_map(abs, {"a": (-1,)}) == {"a": 1}
"""
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env[CHAOS_KILL_ENV] = "1"
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr


def test_resume_after_kill_skips_completed_jobs(tmp_path):
    """The resumed run must load the surviving checkpoints instead of
    recomputing: poison a checkpoint and watch its value come through."""
    import json
    import pickle

    from repro.core.sweep import checkpoint_path

    ckpt = tmp_path / "ck"
    out = tmp_path / "out.json"
    proc = run_sweep(out, ckpt, kill_after=2)
    assert proc.returncode == CHAOS_EXIT_CODE

    done = sorted(p.name for p in ckpt.glob("*.ckpt"))
    assert len(done) == 2
    # poison the first surviving checkpoint
    first = ckpt / done[0]
    with first.open("wb") as f:
        pickle.dump({"poisoned": True}, f)

    proc = run_sweep(out, ckpt, resume=True)
    assert proc.returncode == 0, proc.stderr
    results = json.loads(out.read_text())
    assert {"poisoned": True} in results.values()  # came from the checkpoint

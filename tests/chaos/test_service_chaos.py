"""Service chaos: kill -9 mid-batch, restart, bit-identical recovery.

The CI service job runs this leg.  A real daemon subprocess is rigged
(``REPRO_SERVICE_KILL_AFTER=1``) to hard-exit right after journaling
its first DONE record -- i.e. with one result durable and the rest of
the batch in flight.  The restarted daemon must adopt the durable
result, re-enqueue the rest, and deliver ``output_digest`` values
byte-for-byte identical to a never-crashed run.

The second leg pins down the backpressure contract: a wedged daemon
(slow jobs, one worker, tiny queue) answers over-capacity submissions
with a deterministic BUSY refusal, never by queueing unboundedly.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.service import ServiceClient
from repro.service.daemon import CHAOS_EXIT_CODE, KILL_ENV, SLOW_ENV
from repro.service.runner import run_request
from repro.service.spec import normalize, spec_digest

SPECS = [
    {"kind": "characterize", "app": "synthetic", "np": 4},
    {"kind": "select", "app": "synthetic", "np": 4,
     "configs": "configuration-A"},
    {"kind": "select", "app": "synthetic", "np": 4,
     "configs": "configuration-B"},
]


@pytest.fixture
def launch_daemon(tmp_path):
    """Spawn ``repro-io serve`` subprocesses; killed on teardown."""
    procs: list[subprocess.Popen] = []

    def spawn(journal: Path, **env_overrides: str) -> tuple[
            subprocess.Popen, ServiceClient]:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        env.update(env_overrides)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--listen", "127.0.0.1:0", "--journal", str(journal),
             "--workers", "1", "--queue-cap", "8"],
            stdout=subprocess.PIPE, env=env, text=True)
        procs.append(proc)
        line = (proc.stdout.readline() or "").split()
        assert len(line) == 3 and line[0] == "LISTENING", line
        client = ServiceClient(line[1], int(line[2]), timeout_s=60)
        client.wait_ready(timeout_s=30)
        return proc, client

    spawn.procs = procs
    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


def test_kill9_mid_batch_recovers_bit_identically(tmp_path, launch_daemon):
    # Reference digests from a never-crashed, in-process run.
    reference = {spec_digest(normalize(s)): run_request(normalize(s))
                 ["output_digest"] for s in SPECS}

    journal = tmp_path / "svc"
    # SLOW_ENV paces the single worker so the submit response is safely
    # on the wire before the first DONE pulls the trigger.
    doomed, client = launch_daemon(journal, **{KILL_ENV: "1",
                                               SLOW_ENV: "0.5"})
    sub = client.submit_batch(SPECS)
    assert sub["ok"] and len(sub["requests"]) == 3

    # The daemon journals its first DONE, then hard-exits: no drain, no
    # atexit, nothing -- the closest a test gets to yanking the cord.
    assert doomed.wait(timeout=60) == CHAOS_EXIT_CODE
    assert CHAOS_EXIT_CODE == 29  # the contract the CI job relies on

    _, client2 = launch_daemon(journal)
    stats = client2.status()
    assert stats["completed_total"] >= 1  # the durable result survived
    assert stats["recovered"] == 2  # the in-flight rest was re-enqueued

    res = client2.submit_and_wait(SPECS, timeout_s=120)
    assert res["ok"] and res["complete"]
    recovered = {r["id"]: r["output_digest"] for r in res["requests"]}
    assert recovered == reference  # bit-identical across the crash

    client2.drain()


def test_over_capacity_load_gets_deterministic_busy(tmp_path,
                                                    launch_daemon):
    _, client = launch_daemon(tmp_path / "svc", **{SLOW_ENV: "1.0"})
    # One slow worker, capacity 8: wedge the queue right up to the cap
    # with eight distinct specs (distinct digests, so no dedup relief).
    wedge = [{"kind": "select", "app": "synthetic", "np": 4,
              "configs": f"configuration-{c}", "lattice": bool(l)}
             for c in "ABC" for l in (0, 1)]
    wedge += [{"kind": "characterize", "app": "synthetic", "np": np}
              for np in (4, 9)]
    probe = {"kind": "full_study", "app": "synthetic", "np": 4,
             "configs": "configuration-A"}
    sub = client.submit_batch(wedge)
    assert sub["ok"] and sub["queue_depth"] == 8

    for _ in range(3):  # every refusal is the same, machine-readable
        busy = client.submit_batch([probe])
        assert busy["ok"] is False and busy["error"] == "busy"
        assert busy["retry_after_s"] == 1.0
        assert busy["queue_cap"] == 8
        assert busy["queue_depth"] >= 7  # at most one job finished yet

    assert client.health()["ok"]  # overload never takes out liveness
    res = client.wait(sub["batch"], timeout_s=120)
    assert res["complete"]

    after = client.submit_batch([probe])  # capacity came back
    assert after["ok"]
    client.wait(after["batch"], timeout_s=120)
    assert client.status()["busy_total"] == 3
    client.drain()

"""Cluster-mode chaos: kill a worker mid-sweep, get identical output.

The CI cluster job runs this leg: a real ``select_configuration``
fanned out to localhost socket workers, one of which is rigged
(``REPRO_CLUSTER_KILL_AFTER``) to hard-exit instead of delivering a
result.  The master must requeue the stranded job and the study's
ranking must be byte-for-byte what the serial path produces.
"""

from __future__ import annotations

import json
import operator

from repro import obs
from repro.core.executors import ClusterExecutor
from repro.core.executors.worker import CHAOS_EXIT_CODE
from repro.core.sweep import sweep_map


def _ranking_digest(choice) -> str:
    return json.dumps(choice.ranking(), sort_keys=True)


def test_worker_kill_mid_study_is_invisible(launch_workers):
    """One dead worker: requeued jobs, bit-identical selection."""
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.clusters import ALL_CONFIGURATIONS
    from repro.core.estimate import select_configuration
    from repro.core.pipeline import characterize_app

    factories = {name: ALL_CONFIGURATIONS[name]
                 for name in ("configuration-A", "configuration-B",
                              "configuration-C")}
    model, _ = characterize_app(synthetic_program, 4, SyntheticParams(),
                                app_name="synthetic")
    serial = select_configuration(model.phases, factories)

    doomed = launch_workers(1, REPRO_CLUSTER_KILL_AFTER="1")
    healthy = launch_workers(1)
    _, reg = obs.enable()
    try:
        cluster = select_configuration(
            model.phases, factories,
            executor=ClusterExecutor(workers=doomed + healthy))
        (_, requeues), = reg.get("cluster_requeues_total").samples()
    finally:
        obs.disable()

    assert _ranking_digest(cluster) == _ranking_digest(serial)
    assert cluster.best == serial.best
    assert requeues.value >= 1


def test_killed_worker_exits_with_chaos_code(launch_workers):
    doomed = launch_workers(1, REPRO_CLUSTER_KILL_AFTER="1")
    healthy = launch_workers(1)
    jobs = {f"j{i}": (i, 2) for i in range(6)}
    out = sweep_map(operator.mul, jobs,
                    executor=ClusterExecutor(workers=doomed + healthy))
    assert out == {f"j{i}": i * 2 for i in range(6)}
    # The master dispatches the first pending job to the doomed worker,
    # which hard-exits instead of answering; the sweep can only have
    # completed through a requeue.  The process exit may lag the
    # master's view of the dropped connection by a beat, so wait on the
    # handle rather than probing the (possibly still-draining) port.
    doomed_proc = launch_workers.procs[0]
    assert doomed_proc.wait(timeout=10) == CHAOS_EXIT_CODE
    assert CHAOS_EXIT_CODE == 17  # the contract the CI job relies on


def test_shared_store_survives_worker_kill(tmp_path, launch_workers):
    """Warm-start entries written before the kill stay valid."""
    from repro import store
    from repro.apps.synthetic import SyntheticParams, synthetic_program
    from repro.clusters import ALL_CONFIGURATIONS
    from repro.core.estimate import select_configuration
    from repro.core.pipeline import characterize_app

    factories = {name: ALL_CONFIGURATIONS[name]
                 for name in ("configuration-A", "configuration-B")}
    model, _ = characterize_app(synthetic_program, 4, SyntheticParams(),
                                app_name="synthetic")
    serial = select_configuration(model.phases, factories)

    doomed = launch_workers(1, REPRO_CLUSTER_KILL_AFTER="2")
    healthy = launch_workers(1)
    rs = store.attach(tmp_path / "cache")
    try:
        first = select_configuration(
            model.phases, factories,
            executor=ClusterExecutor(workers=doomed + healthy,
                                     store_mode="writeback"))
        # Second pass warm-starts from the written-back entries.
        hits_before = rs.stats().get("ior", {}).get("entries", 0)
        second = select_configuration(model.phases, factories)
    finally:
        store.detach()
    assert hits_before > 0
    assert _ranking_digest(first) == _ranking_digest(serial)
    assert _ranking_digest(second) == _ranking_digest(serial)

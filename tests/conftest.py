"""Shared fixtures: small clusters and apps sized for fast tests."""

from __future__ import annotations

import pytest

from repro.core import cache as simcache
from repro.iosim import (
    EXT4,
    GIGABIT_ETHERNET,
    JBOD,
    NFS,
    PVFS2,
    RAID5,
    Cluster,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LocalFS,
)


def make_nfs_cluster(n_compute: int = 4, n_disks: int = 5,
                     cache_mb: float = 64.0) -> Cluster:
    """A small NFS/RAID5 cluster in the style of configuration A."""
    disks = [Disk(f"d{i}", DiskSpec()) for i in range(n_disks)]
    volume = RAID5("vol", disks)
    fs = LocalFS("fs", volume, EXT4, cache_mb=cache_mb)
    server = IONode.make("ion0", fs)
    nodes = [ComputeNode.make(f"cn{i}") for i in range(n_compute)]
    return Cluster("test-nfs", nodes, NFS(server), GIGABIT_ETHERNET)


def make_pvfs_cluster(n_compute: int = 4, n_ions: int = 3,
                      cache_mb: float = 64.0) -> Cluster:
    """A small PVFS2/JBOD cluster in the style of configuration B."""
    ions = []
    for i in range(n_ions):
        disk = Disk(f"p{i}", DiskSpec())
        fs = LocalFS(f"fs{i}", JBOD(f"jbod{i}", [disk]), EXT4, cache_mb=cache_mb)
        ions.append(IONode.make(f"ion{i}", fs))
    nodes = [ComputeNode.make(f"cn{i}") for i in range(n_compute)]
    return Cluster("test-pvfs", nodes, PVFS2(ions), GIGABIT_ETHERNET)


@pytest.fixture(autouse=True)
def _fresh_sim_caches():
    """Keep tests hermetic: no memoized results leak across tests."""
    simcache.clear_all()
    yield
    simcache.clear_all()


@pytest.fixture(autouse=True)
def _no_persistent_store():
    """Tests run without a persistent store unless they attach one.

    Detaching also suppresses the ``REPRO_CACHE_DIR`` environment
    fallback, so a developer's exported cache dir cannot bleed results
    into (or out of) the suite.  Module state is restored afterwards so
    an outer attachment -- if any -- keeps working.
    """
    from repro import store

    prev_active, prev_detached = store._active, store._detached
    store.detach()
    yield
    store._active, store._detached = prev_active, prev_detached


@pytest.fixture
def launch_workers():
    """Factory launching real socket sweep workers; killed on teardown.

    Returns ``spawn(n, env_overrides...) -> [(host, port), ...]``.
    Workers run ``repro.core.executors.worker`` as subprocesses with
    the repo's ``src`` on PYTHONPATH, so only functions importable from
    installed/SRC modules (``operator.mul``, repro factories, ...) can
    be dispatched to them -- exactly the production constraint.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    procs: list[subprocess.Popen] = []

    def spawn(count: int = 1, **env_overrides: str):
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        env.update(env_overrides)
        endpoints = []
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.core.executors.worker",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE, env=env, text=True)
            procs.append(proc)
            line = (proc.stdout.readline() or "").split()
            assert len(line) == 3 and line[0] == "LISTENING", line
            endpoints.append((line[1], int(line[2])))
        return endpoints

    spawn.procs = procs  # exposed so tests can wait on worker exit codes
    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture
def nfs_cluster() -> Cluster:
    return make_nfs_cluster()


@pytest.fixture
def pvfs_cluster() -> Cluster:
    return make_pvfs_cluster()

"""The paper's four configurations: structure and calibrated peaks."""

from __future__ import annotations

import pytest

from repro.clusters import (
    ALL_CONFIGURATIONS,
    configuration_a,
    configuration_b,
    configuration_c,
    finisterrae,
)
from repro.core.estimate import peak_bandwidth


class TestInventory:
    def test_all_four_present(self):
        assert set(ALL_CONFIGURATIONS) == {
            "configuration-A", "configuration-B", "configuration-C",
            "finisterrae"}

    def test_factories_return_fresh_clusters(self):
        c1, c2 = configuration_a(), configuration_a()
        assert c1 is not c2
        assert c1.globalfs is not c2.globalfs


class TestConfigurationA:
    def test_structure(self):
        c = configuration_a()
        assert c.globalfs.name == "nfs"
        assert len(c.globalfs.ions) == 1
        assert len(c.compute_nodes) == 8
        volume = c.globalfs.ions[0].fs.volume
        assert type(volume).__name__ == "RAID5"
        assert len(volume.disks) == 5

    def test_description_matches_table_vi(self):
        d = configuration_a().description
        assert d.global_filesystem == "NFS Ver 3"
        assert "RAID 5" in d.redundancy
        assert d.n_devices == 5
        assert d.mount_point == "/raid/raid5"

    def test_peaks_near_paper(self):
        """Table IX: BW_PK ~400 write / ~350 read MB/s."""
        w = peak_bandwidth(configuration_a, "write")
        r = peak_bandwidth(configuration_a, "read")
        assert 350 <= w <= 450
        assert 310 <= r <= 390


class TestConfigurationB:
    def test_structure(self):
        c = configuration_b()
        assert c.globalfs.name == "pvfs2"
        assert len(c.globalfs.ions) == 3
        for ion in c.globalfs.ions:
            assert type(ion.fs.volume).__name__ == "JBOD"
            assert len(ion.fs.volume.disks) == 1

    def test_description_matches_table_vi(self):
        d = configuration_b().description
        assert d.global_filesystem == "PVFS2 2.8.2"
        assert d.redundancy == "JBOD"
        assert d.n_devices == 3

    def test_peak_is_sum_of_ions(self):
        """eq. (4): the ideal parallel sum, ~240 MB/s."""
        w = peak_bandwidth(configuration_b, "write")
        assert 180 <= w <= 280


class TestConfigurationC:
    def test_structure(self):
        c = configuration_c()
        assert c.globalfs.name == "nfs"
        assert len(c.compute_nodes) == 32
        assert c.description.io_library == "OpenMPI"
        assert c.description.mount_point == "/home"


class TestFinisterrae:
    def test_structure(self):
        c = finisterrae()
        assert c.globalfs.name == "lustre"
        assert len(c.globalfs.ions) == 18  # OSS count
        assert len(c.compute_nodes) == 142
        assert c.description.n_devices == 866

    def test_infiniband_compute_net(self):
        c = finisterrae()
        assert "IB" in c.compute_net.name

    def test_lustre_beats_nfs_for_collective_reads(self):
        """The Table XII relation that drives the selection."""
        from repro.apps.ior import IORParams, run_ior

        MB = 1024 * 1024
        params = IORParams(np=16, block_size=64 * MB, transfer_size=16 * MB,
                           collective=True, kinds=("read",))
        bw_c = run_ior(configuration_c(), params).bw("read")
        bw_ft = run_ior(finisterrae(), params).bw("read")
        assert bw_ft > bw_c

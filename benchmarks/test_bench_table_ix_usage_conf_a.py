"""Table IX: I/O system utilization of MADbench2 on configuration A.

Paper row shape (16 procs, 4 GB file, shared file):

    phase  #oper  weight  BW_PK  BW_MD  usage
    1      128 W  4GB     400    93     23
    2      32 R   1GB     350    68     18
    3      192 WR 6GB     375    63     16
    4      32 W   1GB     400    89     22
    5      128 R  4GB     350    66     19

Shape claims checked: BW_PK ~350-400 (RAID 5 device level), BW_MD an
order below it (one GbE through NFS), usage in the ~15-35 % band, and
phase op counts/weights exact.
"""

from __future__ import annotations

from repro.report.tables import usage_table

from bench_common import GB, once, usage_study


def test_table_ix_usage_configuration_a(benchmark):
    ev, peaks = once(benchmark, lambda: usage_study("configuration-A"))
    print("\n" + usage_table(
        ev, title="Table IX: system utilization on configuration A"))
    print(f"IOzone peaks: write={peaks['write']:.0f} read={peaks['read']:.0f} MB/s")

    assert [r.n_operations for r in ev.rows] == [128, 32, 192, 32, 128]
    assert [r.op_label for r in ev.rows] == ["W", "R", "W-R", "W", "R"]
    assert [r.weight // GB for r in ev.rows] == [4, 1, 6, 1, 4]

    # Device-level peak near the paper's 400/350.
    assert 350 <= peaks["write"] <= 450
    assert 310 <= peaks["read"] <= 390

    for row in ev.rows:
        # NFS over 1 GbE: measured bandwidth in the 60-110 MB/s band.
        assert 55 <= row.bw_md_mb_s <= 115
        # eq. (5): usage in the paper's ~16-23 % band (we allow 15-35).
        assert 15 <= row.usage_pct <= 35
        # The IOR replay tracks the application within the paper's bound.
        assert row.error_rel_pct < 20

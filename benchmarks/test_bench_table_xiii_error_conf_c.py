"""Table XIII: estimation error on configuration C for 36/64/121 procs.

Paper values (Time_io(CH) vs Time_io(MD), relative error):

    36p:  Phase 1-50  1137.50 / 1239.05  9%      Phase 51  2773.32 / 2701.22  3%
    64p:  Phase 1-50  1167.40 / 1153.05  1%      Phase 51  2868.51 / 2984.75  4%
    121p: Phase 1-50  1253.05 / 1262.10  1%      Phase 51  3065.91 / 3107.19  1%

Shape claims: every group's error is below 10 %, and the write-phase
error shrinks as the process count grows (the paper: "estimation is
better [for a] higher number of processes").

121 processes use a reduced per-step communication count to keep the
bench's wall time reasonable; it does not change the I/O phases.
"""

from __future__ import annotations

from repro.report.tables import btio_phase_groups, error_table

from bench_common import btio_error_study, once


def _grouped(ev):
    writes_ch = sum(r.time_ch for r in ev.rows if r.op_label == "W")
    writes_md = sum(r.time_md for r in ev.rows if r.op_label == "W")
    read = next(r for r in ev.rows if r.op_label == "R")
    err_w = 100 * abs(writes_ch - writes_md) / writes_md
    err_r = read.time_error_rel_pct
    return writes_ch, writes_md, err_w, read.time_ch, read.time_md, err_r


def test_table_xiii_error_configuration_c(benchmark):
    def pipeline():
        return {
            36: btio_error_study("configuration-C", 36),
            64: btio_error_study("configuration-C", 64),
            121: btio_error_study("configuration-C", 121, comm_events=8),
        }

    studies = once(benchmark, pipeline)

    print("\nTable XIII: error on configuration C (BT-IO class D)")
    print(f"{'np':>5} {'group':<12} {'Time_CH':>10} {'Time_MD':>10} {'err':>6}")
    errors_w = {}
    for np_, ev in studies.items():
        w_ch, w_md, err_w, r_ch, r_md, err_r = _grouped(ev)
        errors_w[np_] = err_w
        print(f"{np_:>5} {'Phase 1-50':<12} {w_ch:>10.2f} {w_md:>10.2f} {err_w:>5.1f}%")
        print(f"{np_:>5} {'Phase 51':<12} {r_ch:>10.2f} {r_md:>10.2f} {err_r:>5.1f}%")
        # The paper's headline: relative error below 10 %.
        assert err_w < 10.0, f"write-group error {err_w:.1f}% at np={np_}"
        assert err_r < 10.0, f"read-phase error {err_r:.1f}% at np={np_}"
        # Magnitudes in the paper's range.
        assert 700 <= w_md <= 2000
        assert 1800 <= r_md <= 4000

    # Error does not grow with the process count (paper's trend).
    assert errors_w[121] <= errors_w[36] + 1.0

"""Figure 2: the per-process trace files of the 4-process example.

Regenerates the trace excerpt -- offsets 0, 265302, 530604, ... (etype
units), request size 10 612 080 bytes, ticks ~122 apart -- and checks
those exact values.
"""

from __future__ import annotations

from repro.report.figures import figure2_trace_excerpt

from bench_common import once, synthetic_study


def test_figure2_trace_excerpt(benchmark):
    def pipeline():
        _, bundle = synthetic_study()
        return bundle, figure2_trace_excerpt(bundle, nrows=4, ranks=(0, 1))

    bundle, text = once(benchmark, pipeline)
    print("\n" + text)

    writes0 = [r for r in bundle.by_rank(0) if r.kind == "write"]
    assert [w.offset for w in writes0[:4]] == [0, 265302, 530604, 795906]
    assert all(w.request_size == 10612080 for w in writes0[:4])
    assert all(w.op == "MPI_File_write_at_all" for w in writes0[:4])
    # Neighbouring ranks reach the same operation within a few ticks
    # (Fig. 2: 148 vs 147).
    writes1 = [r for r in bundle.by_rank(1) if r.kind == "write"]
    assert abs(writes0[0].tick - writes1[0].tick) <= 2
    # ~121 communication events separate consecutive writes.
    gap = writes0[1].tick - writes0[0].tick
    assert 100 <= gap <= 140

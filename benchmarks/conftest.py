"""pytest-benchmark suite: one bench per paper table/figure."""

"""Ablation: replaying mixed W-R phases with plain IOR averaging.

The paper's conclusion reports ~50 % error on MADbench2's phase 3 when
it is replicated by separate IOR write and read runs whose bandwidths
are averaged ("IOR ... does not allow [us] to configure complex access
patterns. We are designing [a] benchmark to replicate the I/O when
there are 2 or more operations in a phase").

This bench quantifies the same fidelity gap on our substrate: the
averaged-IOR estimate of phase 3 is compared against the application's
measured phase time, and against a hypothetical interleaved replay
(write and read alternating per repetition, like the real W function).
"""

from __future__ import annotations

from repro.apps.ior import IORParams, run_ior
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import configuration_a
from repro.core.estimate import estimate_phase
from repro.core.pipeline import measure_on
from repro.simmpi.engine import Engine
from repro.simmpi.fileio import IOEvent

from bench_common import MB, madbench_model, once


def interleaved_replay(phase) -> float:
    """A W-R-aware replayer: alternate write/read per repetition."""
    rs = phase.request_size
    reps = max(phase.rep, 6)

    def program(ctx):
        fh = ctx.file_open("wr-replay")
        base = ctx.rank * 2 * reps * rs
        for k in range(reps):
            fh.seek(base + k * rs)
            fh.write(rs)
            fh.seek(base + reps * rs + k * rs)
            fh.read(rs)
        fh.close()

    events: list[IOEvent] = []
    engine = Engine(phase.np, platform=configuration_a())
    engine.add_io_hook(events.append)
    engine.run(program)
    begin = min(e.time for e in events)
    end = max(e.time + e.duration for e in events)
    nbytes = sum(e.request_size for e in events)
    return nbytes / MB / (end - begin)


def study():
    model, _ = madbench_model()
    phase3 = model.phases[2]
    assert phase3.op_label == "W-R"
    averaged = estimate_phase(phase3, configuration_a)
    measure, mmodel = measure_on(
        madbench2_program, 16, MADbench2Params(),
        cluster_factory=configuration_a, app_name="madbench2")
    measured = measure.phase(phase3.phase_id)
    bw_interleaved = interleaved_replay(phase3)
    return phase3, averaged, measured, bw_interleaved


def test_ablation_mixed_phase_replication(benchmark):
    phase3, averaged, measured, bw_interleaved = once(benchmark, study)

    err_avg = 100 * abs(averaged.bw_ch_mb_s - measured.bw_md_mb_s) / \
        measured.bw_md_mb_s
    err_int = 100 * abs(bw_interleaved - measured.bw_md_mb_s) / \
        measured.bw_md_mb_s

    print("\nAblation: MADbench2 phase 3 (W-R) replication fidelity")
    print(f" measured BW_MD:            {measured.bw_md_mb_s:8.1f} MB/s")
    print(f" averaged IOR (paper):      {averaged.bw_ch_mb_s:8.1f} MB/s "
          f"(error {err_avg:.1f}%)")
    print(f" interleaved replay:        {bw_interleaved:8.1f} MB/s "
          f"(error {err_int:.1f}%)")

    # The interleaved replayer is at least as faithful as plain
    # averaging -- the direction of the authors' planned fix.
    assert err_int <= err_avg + 2.0
    assert measured.bw_md_mb_s > 0

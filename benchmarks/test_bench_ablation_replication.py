"""Ablation: cold (paper-literal) vs steady-state phase replication.

Section III-B replays a phase with IOR sized exactly to the phase
(``b = weight``).  When the target's bottleneck is the *media* behind a
write-back cache (not the network), a short cold replay is absorbed by
the cache and reports a bandwidth the application never sees across 50
repetitions of the phase.  Our replication therefore inflates small
blocks to a steady-state minimum (``STEADY_STATE_MIN_BLOCK``).

The paper's calibrated configurations are all network-bound, where the
choice is a wash (the Finisterrae BT-IO estimate moves by ~1 %); this
bench constructs the controlled case -- a fast-network NFS server over
moderate RAID with a large cache -- and shows the cold replay
overestimating bandwidth severalfold while the steady replay tracks the
application.
"""

from __future__ import annotations

from repro.apps.ior import run_ior
from repro.core.estimate import MB
from repro.core.pipeline import characterize_app, measure_on
from repro.core.replication import replication_for_phase
from repro.iosim import (
    EXT4,
    NFS,
    RAID5,
    Cluster,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LinkSpec,
    LocalFS,
)

from bench_common import once

TEN_GBE = LinkSpec(bw_mb_s=1100.0, latency_s=20e-6, name="10GbE")


def media_bound_cluster() -> Cluster:
    """10 GbE NFS over a ~190 MB/s RAID 5 with a 1 GB write-back cache."""
    disks = [Disk(f"d{i}", DiskSpec(seq_write_bw=50.0, seq_read_bw=55.0))
             for i in range(5)]
    fs = LocalFS("fs", RAID5("r5", disks), EXT4, cache_mb=1024.0)
    server = IONode.make("srv", fs, TEN_GBE, ram_gb=8.0)
    nodes = [ComputeNode.make(f"cn{i}", TEN_GBE) for i in range(8)]
    return Cluster("media-bound", nodes, NFS(server), TEN_GBE)


def checkpoint_app(ctx):
    """50 periodic collective checkpoints of 8 MB per rank."""
    fh = ctx.file_open("ckpt")
    for step in range(50):
        ctx.compute(0.02)
        ctx.allreduce(1.0)
        fh.write_at_all((step * ctx.size + ctx.rank) * 8 * MB, 8 * MB)
    fh.close()
    ctx.barrier()


def estimate_with(phase, min_block: int) -> float:
    repl = replication_for_phase(phase, min_block_bytes=min_block)
    bws = []
    for params in repl.runs:
        result = run_ior(media_bound_cluster(), params)
        (kind,) = params.kinds
        bws.append(result.bw(kind))
    return sum(bws) / len(bws)


def study():
    model, _ = characterize_app(checkpoint_app, 8, app_name="checkpoint")
    write_phase = model.phases[0]
    bw_cold = estimate_with(write_phase, min_block=0)  # paper-literal
    bw_steady = estimate_with(write_phase, min_block=512 * MB)
    measure, _ = measure_on(checkpoint_app, 8,
                            cluster_factory=media_bound_cluster,
                            app_name="checkpoint")
    writes = [m for m in measure.phases if m.op_label == "W"]
    # The application itself is transient: its first phases vanish into
    # the cache, the tail runs at media speed.  A long-running code
    # lives in the tail, so that is what an estimate must predict.
    tail = writes[len(writes) // 2:]
    bw_md = sum(m.bw_md_mb_s for m in tail) / len(tail)
    return bw_cold, bw_steady, bw_md


def test_ablation_cold_vs_steady_replication(benchmark):
    bw_cold, bw_steady, bw_md = once(benchmark, study)

    err_cold = 100 * abs(bw_cold - bw_md) / bw_md
    err_steady = 100 * abs(bw_steady - bw_md) / bw_md
    print("\nAblation: checkpoint write-phase replication, media-bound NFS")
    print(f" app steady tail (25 phases):  {bw_md:8.1f} MB/s")
    print(f" cold replay  (b = rep*rs):    {bw_cold:8.1f} MB/s (err {err_cold:.0f}%)")
    print(f" steady replay (>=512 MB):     {bw_steady:8.1f} MB/s (err {err_steady:.0f}%)")

    # Cold replay (64 MB, absorbed by the 1 GB cache) grossly
    # overestimates; steady replay tracks the sustained application rate.
    assert bw_cold > 2 * bw_md
    assert err_steady < 30.0
    assert err_steady < err_cold / 4

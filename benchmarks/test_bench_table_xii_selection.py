"""Table XII: I/O time estimation and configuration selection.

BT-IO class D, 64 processes, estimated via IOR replication (eqs. 1-2)
on configuration C and Finisterrae.  Paper values (seconds):

    Phase 1-50:  conf C 1167.40   Finisterrae 932.36
    Phase 51:    conf C 2868.51   Finisterrae 844.42

Shape claims: Finisterrae is faster on both phase groups, by a large
factor (~3x) on the read phase; the methodology therefore selects
Finisterrae -- without ever running BT-IO on either system.
"""

from __future__ import annotations

from repro.clusters import configuration_c, finisterrae
from repro.core.estimate import estimate_model, select_configuration
from repro.report.tables import time_estimation_table

from bench_common import btio_model, once


def test_table_xii_selection(benchmark):
    def pipeline():
        model, _ = btio_model("D", 64)
        est_c = estimate_model(model.phases, configuration_c, "conf. C")
        est_ft = estimate_model(model.phases, finisterrae, "Finisterrae")
        choice = select_configuration(model.phases, {
            "configuration-C": configuration_c,
            "finisterrae": finisterrae,
        })
        return model, est_c, est_ft, choice

    model, est_c, est_ft, choice = once(benchmark, pipeline)

    def group(est):
        writes = sum(p.time_ch for p in est.phases if p.op_label == "W")
        read = next(p.time_ch for p in est.phases if p.op_label == "R")
        return {"Phase 1-50": writes, "Phase 51": read}

    totals = {"conf. C": group(est_c), "Finisterrae": group(est_ft)}
    print("\n" + time_estimation_table(
        totals, title="Table XII: Time_io(CH), BT-IO class D, 64 procs"))
    print(f"selected: {choice.best}")

    c, ft = totals["conf. C"], totals["Finisterrae"]
    # Finisterrae wins both groups.
    assert ft["Phase 1-50"] < c["Phase 1-50"]
    assert ft["Phase 51"] < c["Phase 51"]
    # The read phase gap is the big one (paper: 2868 vs 844, ~3.4x).
    assert c["Phase 51"] / ft["Phase 51"] > 2.0
    # Write phases are closer (paper: 1167 vs 932, ~1.25x).
    assert 1.05 < c["Phase 1-50"] / ft["Phase 1-50"] < 2.0
    # And the selection picks Finisterrae.
    assert choice.best == "finisterrae"

    # Magnitudes land in the paper's range (hundreds to thousands of s).
    assert 700 <= c["Phase 1-50"] <= 2000
    assert 1800 <= c["Phase 51"] <= 4000
    assert 500 <= ft["Phase 1-50"] <= 1400
    assert 500 <= ft["Phase 51"] <= 1400

"""Shared machinery for the table/figure reproduction benches.

Each bench regenerates one table or figure of the paper: it runs the
full pipeline (characterize -> replicate with IOR -> measure -> join),
prints the paper-style output, and asserts the *shape* claims (who
wins, error bounds, usage bands).  pytest-benchmark times the pipeline;
rounds are pinned to 1 because a run is deterministic and some span
minutes of simulated-cluster work.

Expensive intermediate results (app characterizations, per-config
studies) are cached per session so related benches share them.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.clusters import (
    configuration_a,
    configuration_b,
    configuration_c,
    finisterrae,
)
from repro.core.model import IOModel
from repro.core.pipeline import (
    characterize_app,
    characterize_peaks_for,
    estimate_on,
    evaluate,
    measure_on,
)
from repro.tracer.hooks import TraceBundle

MB = 1024 * 1024
GB = 1024 * MB

CONFIGS = {
    "configuration-A": configuration_a,
    "configuration-B": configuration_b,
    "configuration-C": configuration_c,
    "finisterrae": finisterrae,
}


def once(benchmark, fn):
    """Run a deterministic, potentially minutes-long pipeline exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# -- cached characterizations -------------------------------------------------

@lru_cache(maxsize=None)
def synthetic_study() -> tuple[IOModel, TraceBundle]:
    return characterize_app(synthetic_program, 4, SyntheticParams(),
                            app_name="synthetic")


@lru_cache(maxsize=None)
def madbench_model() -> tuple[IOModel, TraceBundle]:
    return characterize_app(madbench2_program, 16, MADbench2Params(),
                            app_name="madbench2")


@lru_cache(maxsize=None)
def btio_model(cls: str, np_: int, comm_events: int = 24) -> tuple[IOModel, TraceBundle]:
    params = BTIOParams(cls=cls, comm_events_per_step=comm_events)
    return characterize_app(btio_program, np_, params,
                            app_name=f"btio-{cls}")


@lru_cache(maxsize=None)
def usage_study(config_name: str):
    """MADbench2 usage study on one Aohyper configuration (Tables IX/X)."""
    factory = CONFIGS[config_name]
    model, _ = madbench_model()
    est = estimate_on(model, factory, config_name=config_name)
    measure, mmodel = measure_on(madbench2_program, 16, MADbench2Params(),
                                 cluster_factory=factory, app_name="madbench2")
    peaks = characterize_peaks_for(factory)
    return evaluate(mmodel, est, measure, peaks=peaks), peaks


@lru_cache(maxsize=None)
def btio_error_study(config_name: str, np_: int, comm_events: int = 24):
    """BT-IO class D estimate-vs-measure on one configuration."""
    factory = CONFIGS[config_name]
    params = BTIOParams(cls="D", comm_events_per_step=comm_events)
    model, _ = btio_model("D", np_, comm_events)
    est = estimate_on(model, factory, config_name=config_name)
    measure, mmodel = measure_on(btio_program, np_, params,
                                 cluster_factory=factory, app_name="btio-D")
    return evaluate(mmodel, est, measure)

"""Ablation: eq. (4)'s ideal-parallel BW_PK vs a concurrent measurement.

Eq. (4) sums each I/O node's *individually measured* IOzone maximum --
"the ideal case, where I/O devices are working in parallel without
influence of other components".  The paper itself notes the gap this
creates on configuration B (usage reads ~30 % while the disks are 100 %
busy).  This bench measures the alternative: drive all I/O nodes
concurrently through PVFS2 and compare the achievable aggregate with
eq. (4)'s sum.
"""

from __future__ import annotations

from repro.apps.ior import IORParams, run_ior
from repro.clusters import configuration_b
from repro.core.estimate import peak_bandwidth

from bench_common import MB, once


def study():
    ideal = peak_bandwidth(configuration_b, "write")  # eq. (4)
    # Concurrent: 16 processes streaming large sequential writes through
    # the full PVFS2 stack -- the best the *system* can actually deliver.
    params = IORParams(np=16, block_size=256 * MB, transfer_size=32 * MB,
                       kinds=("write",))
    concurrent = run_ior(configuration_b(), params).bw("write")
    return ideal, concurrent


def test_ablation_ideal_vs_concurrent_peak(benchmark):
    ideal, concurrent = once(benchmark, study)

    print("\nAblation: configuration B peak bandwidth")
    print(f" eq. (4) ideal-parallel sum:   {ideal:8.1f} MB/s")
    print(f" concurrent end-to-end (IOR):  {concurrent:8.1f} MB/s")
    print(f" achievable fraction:          {concurrent / ideal * 100:6.1f} %")

    # The ideal sum is optimistic: the full stack delivers well below it
    # (this is exactly why Table X's usage reads ~30 % while Fig. 8's
    # disks are busy).
    assert concurrent < ideal
    assert 0.15 <= concurrent / ideal <= 0.75

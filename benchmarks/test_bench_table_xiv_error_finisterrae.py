"""Table XIV: estimation error on Finisterrae, 64 processes.

Paper values:

    Phase 1-50:  Time_CH 932.36  Time_MD 924.85  error 1%
    Phase 51:    Time_CH 844.42  Time_MD 909.43  error 7%

Shape claims: both groups under 10 % error; measured magnitudes in the
high hundreds of seconds; the whole BT-IO run stays ~2-3x faster than
configuration C (which is why Table XII's selection was right).
"""

from __future__ import annotations

from bench_common import btio_error_study, once


def test_table_xiv_error_finisterrae(benchmark):
    def pipeline():
        return (btio_error_study("finisterrae", 64),
                btio_error_study("configuration-C", 64))

    ev_ft, ev_c = once(benchmark, pipeline)

    w_ch = sum(r.time_ch for r in ev_ft.rows if r.op_label == "W")
    w_md = sum(r.time_md for r in ev_ft.rows if r.op_label == "W")
    read = next(r for r in ev_ft.rows if r.op_label == "R")
    err_w = 100 * abs(w_ch - w_md) / w_md

    print("\nTable XIV: error on Finisterrae (BT-IO class D, 64p)")
    print(f" Phase 1-50: Time_CH={w_ch:.2f} Time_MD={w_md:.2f} err={err_w:.1f}%")
    print(f" Phase 51:   Time_CH={read.time_ch:.2f} Time_MD={read.time_md:.2f} "
          f"err={read.time_error_rel_pct:.1f}%")

    assert err_w < 10.0
    assert read.time_error_rel_pct < 10.0
    assert 500 <= w_md <= 1400
    assert 500 <= read.time_md <= 1400

    # The selection was validated: Finisterrae's measured total beats C's.
    total_ft = sum(r.time_md for r in ev_ft.rows)
    total_c = sum(r.time_md for r in ev_c.rows)
    assert total_ft < total_c

"""Observability overhead: instrumentation must be free when disabled.

The obs layer promises "zero-cost when no sink is attached": every
instrumentation site is one ``if obs.ACTIVE`` branch (or one no-op
singleton).  This bench makes the promise checkable:

1. time the characterization pipeline with observability disabled;
2. rerun it enabled and count every guard site actually executed
   (spans + events + metric updates);
3. time the guard itself in a tight loop -- a deliberate overestimate,
   since the loop bookkeeping is counted as guard cost;
4. assert the total guard cost stays under 5% of the pipeline time.

An enabled run is also timed for reference (it pays for real span and
metric collection, so it has no bound here).
"""

from __future__ import annotations

import time

from repro import obs
from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.core.pipeline import characterize_app

from bench_common import once

BUDGET_FRACTION = 0.05


def _pipeline():
    return characterize_app(synthetic_program, 4, SyntheticParams(),
                            app_name="synthetic")


def _guard_site_count(tracer, registry) -> int:
    """Guard evaluations an instrumented run performs (conservative)."""
    n = len(tracer.spans) + len(tracer.events)
    for name in ("engine_runs_total", "engine_ops_total",
                 "mpi_collectives_total", "mpi_p2p_total",
                 "device_transfers_total", "globalfs_accesses_total"):
        fam = registry.get(name)
        if fam is None:
            continue
        n += int(sum(child.value for _, child in fam.samples()))
    fam = registry.get("resource_wait_seconds")
    if fam is not None:
        n += sum(child.count for _, child in fam.samples())
    return n


def _guard_unit_cost(samples: int = 200_000) -> float:
    """Seconds per disabled-guard evaluation, loop overhead included."""
    assert not obs.ACTIVE
    t0 = time.perf_counter()
    for _ in range(samples):
        if obs.ACTIVE:
            raise AssertionError("obs must stay disabled here")
    return (time.perf_counter() - t0) / samples


def test_disabled_instrumentation_within_budget(benchmark):
    obs.disable()
    t0 = time.perf_counter()
    _pipeline()
    t_disabled = time.perf_counter() - t0

    tracer, registry = obs.enable()
    try:
        _pipeline()
        sites = _guard_site_count(tracer, registry)
    finally:
        obs.disable()
    assert sites > 0  # the pipeline is actually instrumented

    unit = _guard_unit_cost()
    guard_cost = sites * unit
    print(f"\npipeline {t_disabled * 1e3:.1f} ms disabled; "
          f"{sites} guard sites x {unit * 1e9:.1f} ns "
          f"= {guard_cost * 1e6:.1f} us "
          f"({100 * guard_cost / t_disabled:.3f}% of runtime)")
    assert guard_cost < BUDGET_FRACTION * t_disabled

    model, _ = once(benchmark, _pipeline)
    assert model.nphases >= 1


def test_enabled_collection_reference(benchmark):
    """Reference timing of a fully-collected run (no bound asserted)."""
    def run():
        tracer, registry = obs.enable()
        try:
            model, _ = _pipeline()
            return model, tracer.finish(), registry
        finally:
            obs.disable()

    model, spans, registry = once(benchmark, run)
    assert model.nphases >= 1
    assert spans and registry.get("io_bytes_total").samples()

"""Repetition study: error stability across runs (paper section IV-B).

"We have evaluated these errors by executing several times NAS BT-IO
and error was similar for the different tests.  Furthermore, the I/O
model ha[s been] obtained at a different time to discard the influence
of the tracing tool."

In this substrate, run-to-run variation comes from the background-load
modulation's phase: two executions of the same application meet the
shared servers in different load states.  The bench repeats the BT-IO
measurement with the load wave shifted across its period and checks
that the estimation error stays within the paper's bound every time.
"""

from __future__ import annotations

import math

from repro.apps.btio import BTIOParams, btio_program
from repro.clusters import configuration_c
from repro.core.estimate import estimate_model
from repro.core.pipeline import characterize_app, evaluate, measure_on

from bench_common import once

N_REPETITIONS = 5


def shifted_conf_c(load_phase: float):
    """Configuration C with the background-load wave shifted."""
    def factory():
        cluster = configuration_c()
        for ion in cluster.globalfs.ions:
            ion.nic.spec.load_phase = load_phase
        return cluster

    return factory


def study():
    params = BTIOParams(cls="C")
    model, _ = characterize_app(btio_program, 16, params, app_name="btio-C")
    runs = []
    for k in range(N_REPETITIONS):
        load_phase = 2.0 * math.pi * k / N_REPETITIONS
        factory = shifted_conf_c(load_phase)
        est = estimate_model(model.phases, factory, config_name="conf-C")
        measure, mmodel = measure_on(btio_program, 16, params,
                                     cluster_factory=factory,
                                     app_name="btio-C")
        ev = evaluate(mmodel, est, measure)
        w_ch = sum(r.time_ch for r in ev.rows if r.op_label == "W")
        w_md = sum(r.time_md for r in ev.rows if r.op_label == "W")
        read = next(r for r in ev.rows if r.op_label == "R")
        runs.append((load_phase, 100 * abs(w_ch - w_md) / w_md,
                     read.time_error_rel_pct))
    return runs


def test_repetition_study_errors_stable(benchmark):
    runs = once(benchmark, study)

    print("\nRepetition study: BT-IO class C, 16p on configuration C")
    print(f"{'load phase':>11} {'write err':>10} {'read err':>9}")
    for load_phase, err_w, err_r in runs:
        print(f"{load_phase:>11.2f} {err_w:>9.1f}% {err_r:>8.1f}%")

    errs_w = [e for _, e, _ in runs]
    errs_r = [e for _, _, e in runs]
    # Every repetition within the paper's bound.
    assert max(errs_w) < 10.0
    assert max(errs_r) < 10.0
    # "error was similar for the different tests": tight spread.
    assert max(errs_w) - min(errs_w) < 8.0

"""Figure 6: the I/O model of IOR itself.

IOR with -w -r produces exactly one writing phase followed by one
reading phase in the global access pattern -- the figure the paper uses
to illustrate a minimal model.
"""

from __future__ import annotations

from repro.apps.ior import IORParams, ior_program
from repro.core.pipeline import characterize_app
from repro.report.tables import phases_table

from bench_common import MB, once


def test_figure6_ior_model(benchmark):
    params = IORParams(np=4, block_size=64 * MB, transfer_size=16 * MB,
                       kinds=("write", "read"))

    def pipeline():
        return characterize_app(ior_program, 4, params, app_name="IOR")

    model, bundle = once(benchmark, pipeline)
    print("\n" + phases_table(model, title="I/O model of IOR (Fig. 6)"))

    assert model.nphases == 2
    write_ph, read_ph = model.phases
    assert write_ph.op_label == "W" and read_ph.op_label == "R"
    assert write_ph.tick < read_ph.tick
    # Each phase moves the whole file once.
    assert write_ph.weight == read_ph.weight == 4 * 64 * MB
    # Per-process start offsets are rank-linear (shared-file layout).
    assert write_ph.ops[0].abs_offset_fn.slope == 64 * MB

"""Tables VI and VII: the four I/O configuration inventories."""

from __future__ import annotations

from repro.clusters import (
    configuration_a,
    configuration_b,
    configuration_c,
    finisterrae,
)
from repro.report.tables import configuration_table

from bench_common import once


def test_tables_vi_vii_configuration_inventories(benchmark):
    def pipeline():
        return {name: f() for name, f in [
            ("A", configuration_a), ("B", configuration_b),
            ("C", configuration_c), ("FT", finisterrae)]}

    clusters = once(benchmark, pipeline)

    print("\n" + configuration_table(
        [clusters["A"].description, clusters["B"].description],
        title="Table VI: Aohyper configurations"))
    print("\n" + configuration_table(
        [clusters["C"].description, clusters["FT"].description],
        title="Table VII: configuration C and Finisterrae"))

    a, b = clusters["A"], clusters["B"]
    c, ft = clusters["C"], clusters["FT"]

    # Table VI rows.
    assert a.description.global_filesystem == "NFS Ver 3"
    assert b.description.global_filesystem == "PVFS2 2.8.2"
    assert a.description.n_devices == 5 and b.description.n_devices == 3
    assert "RAID 5" in a.description.redundancy
    assert b.description.redundancy == "JBOD"
    assert len(a.compute_nodes) == len(b.compute_nodes) == 8

    # Table VII rows.
    assert c.description.io_library == "OpenMPI"
    assert ft.description.global_filesystem == "Lustre (HP SFS)"
    assert ft.description.n_devices == 866
    assert len(ft.globalfs.ions) == 18
    assert "Infiniband" in ft.description.comm_network

    # Structural checks behind the table.
    assert len(a.globalfs.ions[0].fs.volume.disks) == 5
    assert all(len(ion.fs.volume.disks) == 1 for ion in b.globalfs.ions)

"""Figure 8: device activity of MADbench2 on configuration B.

The paper monitors each PVFS2 I/O node's disk with ``iostat -x -p 1``
and shows: (i) the application's I/O phases are visible at device
level as activity bursts, and (ii) during the phases the disks run at
~100 % busy even though the application-level usage is ~30 %.
"""

from __future__ import annotations

from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import configuration_b
from repro.report.figures import device_series_ascii, device_series_csv
from repro.simmpi.engine import Engine


def run_with_monitor():
    cluster = configuration_b()
    engine = Engine(16, platform=cluster)
    # Real MADbench2 busy-work (dgemm-scale) is seconds per bin; a long
    # compute stretch makes the inter-phase idle gaps of Fig. 8 visible.
    engine.run(madbench2_program, MADbench2Params(busy_seconds=5.0))
    return cluster


def test_figure8_device_activity(benchmark):
    cluster = benchmark.pedantic(run_with_monitor, rounds=1, iterations=1)
    monitor = cluster.monitor

    devices = monitor.devices()
    print()
    for dev in devices:
        print(device_series_ascii(monitor, dev, bucket=2.0, width=70))
    csv = device_series_csv(monitor, bucket=1.0)
    print(f"[csv rows: {len(csv.splitlines()) - 1}]")

    # All three PVFS2 disks saw traffic (striping spreads every request).
    assert len(devices) == 3
    for dev in devices:
        assert monitor.total_bytes(dev) > 0

    # Phase structure appears at device level: active and idle buckets
    # alternate (compute/communication between I/O phases).
    rows = monitor.series(devices[0], bucket=1.0)
    active = [r for r in rows if r.busy_fraction > 0.5]
    idle = [r for r in rows if r.busy_fraction < 0.05]
    assert active and idle

    # During the phases the disk is ~100 % busy (the paper's point):
    # the busiest quartile of buckets averages >90 % busy.
    busiest = sorted((r.busy_fraction for r in rows), reverse=True)
    top = busiest[: max(1, len(busiest) // 4)]
    assert sum(top) / len(top) > 0.9

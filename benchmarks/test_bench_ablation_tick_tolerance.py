"""Ablation: tick tolerance in cross-process phase matching.

Phases group LAPs of different ranks whose first ticks are "similar"
(Fig. 2: 148 vs 147 -- real SPMD ranks drift by a few events).  Too
tight a tolerance splits one logical phase into per-tick fragments.
The bench has two parts:

* a drifting workload (rank pairs perform a rank-dependent number of
  point-to-point exchanges before a collective write) where tolerance 0
  shatters the single phase and the default recovers it;
* MADbench2 and BT-IO class C, whose perfectly symmetric ranks make the
  extraction stable across four orders of magnitude of tolerance --
  including absurdly loose values, because a phase takes at most one
  LAP per rank.
"""

from __future__ import annotations

from repro.core.model import IOModel
from repro.tracer import trace_run

from bench_common import MB, btio_model, madbench_model, once

NP = 8


def drifting_app(ctx):
    """Rank pair k exchanges k messages before one collective write."""
    pair = ctx.rank // 2
    partner = ctx.rank ^ 1
    for _ in range(pair * 4):
        if ctx.rank % 2 == 0:
            ctx.send(partner, 1024)
        else:
            ctx.recv(partner)
    fh = ctx.file_open("drift.dat")
    fh.write_at_all(ctx.rank * MB, MB)
    fh.close()


def sweep():
    drift_bundle = trace_run(drifting_app, NP)
    _, mb_bundle = madbench_model()
    _, bt_bundle = btio_model("C", 16)
    results = {}
    for tol in (0, 1, 4, 16, 64, 100_000):
        drift = IOModel.from_trace(drift_bundle, tick_tol=tol).nphases
        mb = IOModel.from_trace(mb_bundle, tick_tol=tol).nphases
        bt = IOModel.from_trace(bt_bundle, tick_tol=tol).nphases
        results[tol] = (drift, mb, bt)
    return results


def test_ablation_tick_tolerance(benchmark):
    results = once(benchmark, sweep)

    print("\nAblation: phase count vs tick tolerance")
    print(f"{'tol':>8} {'drifting':>9} {'madbench2':>10} {'btio-C':>8}"
          "   (true: 1 / 5 / 41)")
    for tol, (drift, mb, bt) in results.items():
        print(f"{tol:>8} {drift:>9} {mb:>10} {bt:>8}")

    # Tolerance 0 shatters the drifting workload's single write phase.
    assert results[0][0] > 1
    # The default tolerance recovers the true structure everywhere.
    assert results[16] == (1, 5, 41)
    # A moderate band is stable on the symmetric workloads.
    assert results[4][1:] == results[16][1:] == results[64][1:]
    # Even an absurd tolerance cannot over-merge: a phase absorbs at
    # most one LAP per rank, so BT-IO keeps its 41 phases.
    assert results[100_000][2] == 41

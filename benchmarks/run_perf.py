#!/usr/bin/env python
"""Before/after wall-clock benchmark for the fast SPMD core.

Runs the paper's end-to-end workloads twice:

* **before** -- the pre-optimization engine: thread-per-rank scheduler,
  memo caches disabled, full IOzone grids (no steady-state closure),
  no repetition extrapolation;
* **after**  -- the optimized core: coroutine scheduler, memoization,
  IOzone steady-state closure, replay extrapolation where opt-in.

Both legs must produce the *same* numbers (BW_CH, Time_io, usage,
errors) to 1e-9 -- the optimizations are exact, only faster.  Results
land in ``BENCH_perf.json``; ``--check-baseline`` compares the "after"
total against ``benchmarks/BENCH_baseline.json`` and exits non-zero on
a >30 % regression (the CI perf job).

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--out BENCH_perf.json]
                                                 [--check-baseline]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import (
    configuration_a,
    configuration_b,
    configuration_c,
    finisterrae,
)
from repro.core import cache as simcache
from repro.core.offsetfn import OffsetFunction
from repro.core.phases import Phase, PhaseOp
from repro.core.pipeline import full_study
from repro.core.replayer import replay_phase
from repro.simmpi.engine import Engine

from fractions import Fraction

MB = 1024 * 1024

REGRESSION_TOLERANCE = 1.30  # fail CI if after_s grows past 130 % of baseline


# -- legacy-mode shims --------------------------------------------------------

@contextmanager
def forced_engine_mode(mode: str):
    """Force every Engine in the pipeline onto one scheduler."""
    orig = Engine.__init__

    def patched(self, *a, **kw):
        kw["mode"] = mode
        orig(self, *a, **kw)

    Engine.__init__ = patched
    try:
        yield
    finally:
        Engine.__init__ = orig


@contextmanager
def full_iozone_grids():
    """Disable the IOzone steady-state closure (pre-PR behaviour)."""
    import repro.apps.iozone as iozone_mod
    import repro.core.estimate as estimate_mod

    orig = iozone_mod.run_iozone

    def slow(ion, params):
        return orig(ion, dataclasses.replace(params, steady_state_ops=0))

    iozone_mod.run_iozone = slow
    estimate_mod.run_iozone = slow
    try:
        yield
    finally:
        iozone_mod.run_iozone = orig
        estimate_mod.run_iozone = orig


@contextmanager
def legacy_core():
    """The full pre-PR configuration: threads, no caches, no closure."""
    simcache.disable(clear=True)
    try:
        with forced_engine_mode("threads"), full_iozone_grids():
            yield
    finally:
        simcache.enable()


# -- workloads ----------------------------------------------------------------

def study_madbench2() -> dict:
    """Tables VIII-X: MADbench2 usage on Aohyper configurations A and B."""
    return full_study(
        madbench2_program, 16, MADbench2Params(),
        cluster_factories={"configuration-A": configuration_a,
                           "configuration-B": configuration_b},
        measure_configs=("configuration-A", "configuration-B"),
        app_name="madbench2")


def study_btio() -> dict:
    """Tables XI-XII: BT-IO class D selection between configuration C
    and Finisterrae (estimation only -- the methodology's whole point
    is that no measurement is needed to choose)."""
    return full_study(
        btio_program, 16, BTIOParams(cls="D", comm_events_per_step=24),
        cluster_factories={"configuration-C": configuration_c,
                           "finisterrae": finisterrae},
        app_name="btio-D")


def steady_cluster():
    """A drift-free NFS cluster: no page cache, so the per-repetition
    cost settles immediately and the extrapolation fast path engages."""
    from repro.iosim.device import Disk, DiskSpec
    from repro.iosim.raid import RAID5
    from repro.iosim.localfs import EXT4, LocalFS
    from repro.iosim.network import GIGABIT_ETHERNET
    from repro.iosim.nodes import ComputeNode, IONode
    from repro.iosim.globalfs import NFS
    from repro.iosim.cluster import Cluster

    disks = [Disk(f"d{i}", DiskSpec()) for i in range(5)]
    fs = LocalFS("fs", RAID5("vol", disks), EXT4, cache_mb=0.0)
    nodes = [ComputeNode.make(f"cn{i}") for i in range(4)]
    return Cluster("bench-nfs", nodes, NFS(IONode.make("ion0", fs)),
                   GIGABIT_ETHERNET)


def high_rep_phase(rep: int = 2048) -> Phase:
    offs = OffsetFunction(slope=Fraction(64 * MB), intercept=Fraction(0))
    op = PhaseOp(op="write_at", kind="write", request_size=MB, disp=0,
                 offset_fn=offs, abs_offset_fn=offs)
    return Phase(phase_id=1, file_group="bench", rep=rep, ops=(op,),
                 ranks=tuple(range(4)), tick=1.0, first_time=0.0,
                 duration=1.0)


def replay_full() -> float:
    phase = high_rep_phase()
    return replay_phase(phase, steady_cluster()).bw_mb_s


def replay_extrapolated() -> float:
    phase = high_rep_phase()
    return replay_phase(phase, steady_cluster(), extrapolate_reps=8).bw_mb_s


# -- output canonicalization --------------------------------------------------

def summarize_study(study: dict) -> dict:
    """Flatten a full_study result into comparable scalars."""
    out: dict[str, float | str] = {"best": study["selection"]["best"]}
    for name, total in sorted(study["selection"]["totals"].items()):
        out[f"total_time_ch[{name}]"] = total
    for name, report in sorted(study["estimates"].items()):
        for p in report.phases:
            out[f"bw_ch[{name}][{p.phase_id}]"] = p.bw_ch_mb_s
            out[f"time_ch[{name}][{p.phase_id}]"] = p.time_ch
    for name, ev in sorted(study["evaluations"].items()):
        for row in ev.rows:
            out[f"usage[{name}][{row.phase_id}]"] = row.usage_pct
            out[f"error[{name}][{row.phase_id}]"] = row.error_rel_pct
            out[f"bw_md[{name}][{row.phase_id}]"] = row.bw_md_mb_s
    return out


def compare(before: dict, after: dict, rtol: float = 1e-9) -> list[str]:
    """Relative differences beyond ``rtol``; empty means identical."""
    drift = []
    for key in sorted(set(before) | set(after)):
        a, b = before.get(key), after.get(key)
        if isinstance(a, str) or isinstance(b, str):
            if a != b:
                drift.append(f"{key}: {a!r} != {b!r}")
            continue
        if a is None or b is None:
            drift.append(f"{key}: missing on one side")
            continue
        if abs(a - b) > rtol * max(abs(a), abs(b), 1e-30):
            drift.append(f"{key}: {a!r} vs {b!r}")
    return drift


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


# -- driver -------------------------------------------------------------------

WORKLOADS = [
    ("full_study_madbench2", study_madbench2, summarize_study, 1e-9),
    ("full_study_btio", study_btio, summarize_study, 1e-9),
    # Extrapolation is an analytic closure: bit-identity is not claimed,
    # agreement to 1e-6 relative is (and is asserted here).
    ("replay_high_rep", None, None, 1e-6),
]


def run_legs() -> dict:
    report: dict = {"workloads": {}, "drift": {}, "cache_stats": {}}

    for name, fn, summarize, rtol in WORKLOADS:
        if name == "replay_high_rep":
            simcache.clear_all()
            with legacy_core():
                bw_before, t_before = timed(replay_full)
            simcache.clear_all()
            bw_after, t_after = timed(replay_extrapolated)
            drift = compare({"bw": bw_before}, {"bw": bw_after}, rtol=rtol)
        else:
            simcache.clear_all()
            with legacy_core():
                res_before, t_before = timed(fn)
            simcache.clear_all()
            res_after, t_after = timed(fn)
            drift = compare(summarize(res_before), summarize(res_after),
                            rtol=rtol)
        report["workloads"][name] = {
            "before_s": round(t_before, 4),
            "after_s": round(t_after, 4),
            "speedup": round(t_before / max(t_after, 1e-9), 2),
        }
        report["drift"][name] = drift
        # clear_all() zeroes the counters, so these are per-workload.
        report["cache_stats"][name] = simcache.stats()
        status = "OK" if not drift else f"DRIFT({len(drift)})"
        print(f"{name:24s} before={t_before:8.3f}s after={t_after:8.3f}s "
              f"speedup={t_before / max(t_after, 1e-9):6.2f}x  {status}")

    before_total = sum(w["before_s"] for w in report["workloads"].values())
    after_total = sum(w["after_s"] for w in report["workloads"].values())
    report["total"] = {
        "before_s": round(before_total, 4),
        "after_s": round(after_total, 4),
        "speedup": round(before_total / max(after_total, 1e-9), 2),
    }
    report["identical_outputs"] = not any(report["drift"].values())
    print(f"{'TOTAL':24s} before={before_total:8.3f}s "
          f"after={after_total:8.3f}s "
          f"speedup={report['total']['speedup']:6.2f}x")
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_perf.json",
                    help="where to write the JSON report")
    ap.add_argument("--check-baseline", action="store_true",
                    help="fail on >30%% regression vs BENCH_baseline.json")
    args = ap.parse_args(argv)

    report = run_legs()
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not report["identical_outputs"]:
        for name, drift in report["drift"].items():
            for line in drift:
                print(f"DRIFT {name}: {line}", file=sys.stderr)
        return 1

    if args.check_baseline:
        baseline_path = Path(__file__).parent / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        allowed = baseline["total"]["after_s"] * REGRESSION_TOLERANCE
        got = report["total"]["after_s"]
        print(f"baseline after_s={baseline['total']['after_s']:.3f} "
              f"allowed<={allowed:.3f} got={got:.3f}")
        if got > allowed:
            print("perf regression: after_s exceeds 130% of baseline",
                  file=sys.stderr)
            return 2

    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Before/after wall-clock benchmark for the fast SPMD core and the
columnar characterization pipeline.

Three workload families, each workload run as a before/after pair:

* **simulation** (``full_study_*``, ``replay_high_rep``) -- before: the
  pre-optimization engine (thread-per-rank scheduler, memo caches
  disabled, full IOzone grids, no extrapolation); after: the optimized
  core.
* **characterization** (``characterize_*``) -- before: the per-record
  reference pipeline (Fig. 2 text parse into ``TraceRecord`` objects,
  record-by-record LAP/phase extraction); after: the columnar pipeline
  (binary column load, vectorized extraction) -- once on the numpy
  backend, once on the pure-Python fallback, plus a traced high-np ROMS
  run.
* **distributed sweep** (``sweep_cluster``) -- before: spawn-per-job
  dispatch to fresh worker processes; after: one persistent socket
  worker cluster (:mod:`repro.core.executors`) running the same replay
  jobs with pipelined dispatch.

Every workload's two legs must produce the *same* results (models are
compared bit-for-bit) -- the optimizations are exact, only faster.  Any
mismatch lands in the report's ``output_drift`` arrays; the ``drift``
arrays record per-repeat timing deltas against the recorded (best)
``after_s``, and ``output_digest`` holds a sha256 over each workload's
canonical "after" summary so separate runs can be compared bit-for-bit.

Workloads flagged ``fresh_store`` (the high-np ROMS characterization)
attach a fresh persistent result store (:mod:`repro.store`) for their
"after" legs: repeat 1 populates it cold, repeat 2 warm-starts from
disk, and best-of records the warm path -- the cross-process re-run
cost the store is built to eliminate.

Results land in ``BENCH_perf.json``; ``--check-baseline`` compares the
"after" total against ``benchmarks/BENCH_baseline.json``, exits
non-zero on a >30 % regression, and enforces each workload's minimum
speedup (the characterization workloads must stay >= 5x).
``--check-warm COLD.json`` is the CI warm-cache gate: run the suite
twice with ``REPRO_CACHE_DIR`` set, pass the first (cold) report to the
second run, and it asserts every ``full_study_*`` workload warm-started
from the persistent store (>= 5x faster after leg, disk hits recorded,
bit-identical output digest).

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--out BENCH_perf.json]
                                                 [--check-baseline]
                                                 [--check-warm COLD.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import hashlib
import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from fractions import Fraction
from pathlib import Path
from typing import Callable

from repro.apps.btio import BTIOParams, btio_program
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.apps.roms import ROMSParams, roms_program
from repro.clusters import (
    configuration_a,
    configuration_b,
    configuration_c,
    finisterrae,
)
from repro import store
from repro.core import cache as simcache
from repro.core.model import IOModel
from repro.core.offsetfn import OffsetFunction
from repro.core.phases import Phase, PhaseOp
from repro.core.pipeline import full_study
from repro.core.replayer import replay_phase
from repro.simmpi.engine import Engine
from repro.tracer.columns import TraceColumns, numpy_enabled
from repro.tracer.hooks import TraceBundle, trace_run
from repro.tracer.metadata import AppMetadata, FileMetadataSummary
from repro.tracer.tracefile import HEADER, read_trace_file

MB = 1024 * 1024

REGRESSION_TOLERANCE = 1.30  # fail CI if after_s grows past 130 % of baseline
WARM_SPEEDUP_FLOOR = 5.0  # --check-warm: warm full_study_* vs cold after_s


# -- legacy-mode shims --------------------------------------------------------

@contextmanager
def forced_engine_mode(mode: str):
    """Force every Engine in the pipeline onto one scheduler."""
    orig = Engine.__init__

    def patched(self, *a, **kw):
        kw["mode"] = mode
        orig(self, *a, **kw)

    Engine.__init__ = patched
    try:
        yield
    finally:
        Engine.__init__ = orig


@contextmanager
def full_iozone_grids():
    """Disable the IOzone steady-state closure (pre-PR behaviour)."""
    import repro.apps.iozone as iozone_mod
    import repro.core.estimate as estimate_mod

    orig = iozone_mod.run_iozone

    def slow(ion, params):
        return orig(ion, dataclasses.replace(params, steady_state_ops=0))

    iozone_mod.run_iozone = slow
    estimate_mod.run_iozone = slow
    try:
        yield
    finally:
        iozone_mod.run_iozone = orig
        estimate_mod.run_iozone = orig


@contextmanager
def legacy_core():
    """The full pre-PR configuration: threads, no caches, no closure."""
    simcache.disable(clear=True)
    try:
        with forced_engine_mode("threads"), full_iozone_grids():
            yield
    finally:
        simcache.enable()


# -- simulation workloads -----------------------------------------------------

def study_madbench2() -> dict:
    """Tables VIII-X: MADbench2 usage on Aohyper configurations A and B."""
    return full_study(
        madbench2_program, 16, MADbench2Params(),
        cluster_factories={"configuration-A": configuration_a,
                           "configuration-B": configuration_b},
        measure_configs=("configuration-A", "configuration-B"),
        app_name="madbench2")


def study_btio() -> dict:
    """Tables XI-XII: BT-IO class D selection between configuration C
    and Finisterrae (estimation only -- the methodology's whole point
    is that no measurement is needed to choose)."""
    return full_study(
        btio_program, 16, BTIOParams(cls="D", comm_events_per_step=24),
        cluster_factories={"configuration-C": configuration_c,
                           "finisterrae": finisterrae},
        app_name="btio-D")


def steady_cluster():
    """A drift-free NFS cluster: no page cache, so the per-repetition
    cost settles immediately and the extrapolation fast path engages."""
    from repro.iosim.device import Disk, DiskSpec
    from repro.iosim.raid import RAID5
    from repro.iosim.localfs import EXT4, LocalFS
    from repro.iosim.network import GIGABIT_ETHERNET
    from repro.iosim.nodes import ComputeNode, IONode
    from repro.iosim.globalfs import NFS
    from repro.iosim.cluster import Cluster

    disks = [Disk(f"d{i}", DiskSpec()) for i in range(5)]
    fs = LocalFS("fs", RAID5("vol", disks), EXT4, cache_mb=0.0)
    nodes = [ComputeNode.make(f"cn{i}") for i in range(4)]
    return Cluster("bench-nfs", nodes, NFS(IONode.make("ion0", fs)),
                   GIGABIT_ETHERNET)


def high_rep_phase(rep: int = 2048) -> Phase:
    offs = OffsetFunction(slope=Fraction(64 * MB), intercept=Fraction(0))
    op = PhaseOp(op="write_at", kind="write", request_size=MB, disp=0,
                 offset_fn=offs, abs_offset_fn=offs)
    return Phase(phase_id=1, file_group="bench", rep=rep, ops=(op,),
                 ranks=tuple(range(4)), tick=1.0, first_time=0.0,
                 duration=1.0)


def replay_full() -> float:
    phase = high_rep_phase()
    return replay_phase(phase, steady_cluster()).bw_mb_s


def replay_extrapolated() -> float:
    phase = high_rep_phase()
    return replay_phase(phase, steady_cluster(), extrapolate_reps=8).bw_mb_s


# -- characterization workloads -----------------------------------------------
#
# A large synthetic trace in the shape the paper's apps produce: every
# rank runs the same phase sequence (tandem repetitions, unit length 1
# or 2, tick gaps between phases, rank-linear initial offsets over two
# files), so cross-rank phase grouping and the f(initOffset) fits all
# engage.  Generated once into a temp directory as (a) per-rank Fig. 2
# text files, (b) the packed '.trc' binary, (c) '.npz' when numpy is
# available -- everything derived from the *text* rows, so both legs
# see byte-identical inputs.

SYNTH_RANKS = 64
SYNTH_PHASES = 24
SYNTH_REP = 140

_datasets: dict = {}


def _synth_metadata() -> AppMetadata:
    files = [
        FileMetadataSummary(
            filename=name, file_id=fid, pointer_kinds=("explicit",),
            collective=True, noncollective=False, access_mode="sequential",
            access_type="shared", etype_size=1, size_bytes=0,
            openers=SYNTH_RANKS)
        for fid, name in ((0, "data.dat"), (1, "checkpoint.dat"))
    ]
    return AppMetadata(files=files)


def _synth_rank_rows(rank: int, nphases: int = SYNTH_PHASES) -> list[str]:
    """One rank's trace rows: ``nphases`` tick-separated phases."""
    rows = []
    tick = 0
    t = rank * 0.001
    for ph in range(nphases):
        unit = 2 if ph % 4 == 0 else 1
        fid = ph % 2
        rs = 65536 if fid == 0 else 16384
        disp = rs * unit
        base = rank * SYNTH_REP * disp + ph * 7 * MB
        tick += 50  # communication gap: new burst, new phase
        for k in range(SYNTH_REP):
            for j in range(unit):
                op = "MPI_File_write_at_all" if j == 0 else "MPI_File_read_at"
                off = base + k * disp + j * rs
                tick += 1
                t += 1e-4
                rows.append(f"{rank} {fid} {op} {off} {tick} {rs} "
                            f"{t:.6f} {1e-4:.6f} {off}")
    return rows


def characterization_dataset() -> dict:
    """Generate (once) the synthetic trace in all three formats."""
    if "synth" in _datasets:
        return _datasets["synth"]
    directory = Path(tempfile.mkdtemp(prefix="bench_char_"))
    for rank in range(SYNTH_RANKS):
        rows = _synth_rank_rows(rank)
        (directory / f"trace.{rank}").write_text(
            HEADER + "\n" + "\n".join(rows) + "\n")
    # canonical columns come from re-reading the text, so the binary
    # legs consume exactly what the text legs parse
    parts = [
        TraceColumns.from_records(
            read_trace_file(directory / f"trace.{rank}"), backend="python")
        for rank in range(SYNTH_RANKS)
    ]
    cols = TraceColumns.concat(parts)
    cols.save(directory / "columns.trc")
    if numpy_enabled():
        TraceColumns.load(directory / "columns.trc").save(
            directory / "columns.npz")
    ds = {"dir": directory, "nranks": SYNTH_RANKS, "nevents": len(cols),
          "metadata": _synth_metadata()}
    _datasets["synth"] = ds
    return ds


def characterize_synth_records() -> IOModel:
    """Before leg: text parse into records + reference extraction."""
    ds = characterization_dataset()
    records = []
    for rank in range(ds["nranks"]):
        records.extend(read_trace_file(ds["dir"] / f"trace.{rank}"))
    bundle = TraceBundle(nprocs=ds["nranks"], records=records,
                         metadata=ds["metadata"])
    return IOModel.from_trace(bundle, app_name="synth_large",
                              method="records")


def characterize_synth_columnar() -> IOModel:
    """After leg (numpy): binary column load + vectorized extraction."""
    ds = characterization_dataset()
    name = "columns.npz" if numpy_enabled() else "columns.trc"
    cols = TraceColumns.load(ds["dir"] / name)
    return IOModel.from_columns(cols, ds["metadata"], ds["nranks"],
                                app_name="synth_large")


def characterize_synth_fallback() -> IOModel:
    """After leg (no numpy): packed '.trc' load + pure-Python kernels."""
    ds = characterization_dataset()
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        cols = TraceColumns.load(ds["dir"] / "columns.trc", backend="python")
        return IOModel.from_columns(cols, ds["metadata"], ds["nranks"],
                                    app_name="synth_large")
    finally:
        del os.environ["REPRO_NO_NUMPY"]


# -- streaming characterization (1M events) -----------------------------------
#
# The same synthetic phase shape scaled to ~1M events by raising the
# *phase count* (burst sizes stay constant -- the quantity the folder
# must buffer).  Before: the per-record reference pipeline materializes
# every TraceRecord.  After: the trace streams chunk-wise through
# ``IOModel.from_stream`` and never exists in memory at once.

STREAM_EVENTS_PER_PHASE = 175  # avg over the unit-1/unit-2 mix
STREAM_PHASES_1M = 90          # 64 ranks x 90 phases x 175 = 1,008,000


def _stream_events(nphases: int) -> int:
    return SYNTH_RANKS * nphases * STREAM_EVENTS_PER_PHASE


def stream_dataset(nphases: int = STREAM_PHASES_1M) -> dict:
    """Generate (once per size) the large trace as a text bundle."""
    key = f"stream{nphases}"
    if key in _datasets:
        return _datasets[key]
    directory = Path(tempfile.mkdtemp(prefix="bench_stream_"))
    for rank in range(SYNTH_RANKS):
        rows = _synth_rank_rows(rank, nphases)
        (directory / f"trace.{rank}").write_text(
            HEADER + "\n" + "\n".join(rows) + "\n")
    metadata = _synth_metadata()
    (directory / "metadata.json").write_text(json.dumps(
        {"nprocs": SYNTH_RANKS, "metadata": metadata.to_dict()}))
    ds = {"dir": directory, "metadata": metadata,
          "nevents": _stream_events(nphases)}
    _datasets[key] = ds
    return ds


def characterize_stream_records() -> IOModel:
    """Before leg: materialize all ~1M records, reference extraction."""
    ds = stream_dataset()
    records = []
    for rank in range(SYNTH_RANKS):
        records.extend(read_trace_file(ds["dir"] / f"trace.{rank}"))
    bundle = TraceBundle(nprocs=SYNTH_RANKS, records=records,
                         metadata=ds["metadata"])
    return IOModel.from_trace(bundle, app_name="synth_stream",
                              method="records")


def characterize_stream_streaming() -> IOModel:
    """After leg: chunk-wise text parse + incremental LAP folding."""
    from repro.tracer.hooks import stream_bundle

    ds = stream_dataset()
    nprocs, metadata, chunks = stream_bundle(ds["dir"])
    return IOModel.from_stream(chunks, metadata, nprocs,
                               app_name="synth_stream")


def ingest_1m_classic() -> TraceColumns:
    """Before leg: line-wise reference parse of every rank file."""
    from repro.tracer.columns import _read_trace_columns_lines

    ds = stream_dataset()
    parts = [_read_trace_columns_lines(ds["dir"] / f"trace.{rank}")
             for rank in range(SYNTH_RANKS)]
    return TraceColumns.concat(parts)


def ingest_1m_cached() -> TraceColumns:
    """After leg: the ingest engine over the same files.

    Under ``fresh_store`` + ``repeat=2`` the first run parses through
    the bulk kernel and populates the parse cache; the second loads the
    packed ``.trc`` payloads straight from the store, and best-of
    records that warm path.
    """
    from repro.tracer.ingest import ingest_columns

    ds = stream_dataset()
    parts = [ingest_columns(ds["dir"] / f"trace.{rank}")
             for rank in range(SYNTH_RANKS)]
    return TraceColumns.concat(parts)


def summarize_columns(cols: TraceColumns) -> dict:
    return {"nrows": len(cols), "digest": cols.content_digest()}


def stream_rss_probe(nevents: int) -> int:
    """Subprocess body: stream ``nevents`` and report peak RSS (KB).

    Run in a fresh process so ``ru_maxrss`` reflects only this
    workload; ``--check-stream-rss`` compares two sizes to assert the
    peak is (near-)independent of the event count.
    """
    import resource

    nphases = max(1, round(nevents / (SYNTH_RANKS *
                                      STREAM_EVENTS_PER_PHASE)))
    ds = stream_dataset(nphases)
    from repro.tracer.hooks import stream_bundle

    nprocs, metadata, chunks = stream_bundle(ds["dir"])
    model = IOModel.from_stream(chunks, metadata, nprocs,
                                app_name="synth_stream")
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({"rss_kb": rss_kb, "nevents": ds["nevents"],
                      "nphases": model.nphases}))
    return 0


# Streaming memory is O(phases + open bursts), not O(events): 860K
# extra events may add only the model-sized term (LAP entries plus
# allocator arena noise, ~25 MB observed) -- materializing them as
# records costs ~200 MB, as columns ~70 MB.  The slack bound asserts
# the streaming path never slid back to either.
STREAM_RSS_SLACK_KB = 40_000


def check_stream_rss() -> int:
    """Launch two RSS probes; fail if peak RSS scales with events."""
    import subprocess

    sizes = (150_000, _stream_events(STREAM_PHASES_1M))
    results = []
    for n in sizes:
        proc = subprocess.run(
            [sys.executable, __file__, "--stream-rss-probe", str(n)],
            capture_output=True, text=True, check=True)
        results.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    small, large = results
    delta = large["rss_kb"] - small["rss_kb"]
    print(f"stream RSS: {small['nevents']} events -> {small['rss_kb']} KB, "
          f"{large['nevents']} events -> {large['rss_kb']} KB "
          f"(delta {delta} KB, allowed {STREAM_RSS_SLACK_KB} KB)")
    if delta > STREAM_RSS_SLACK_KB:
        print(f"streaming memory regression: "
              f"{large['nevents'] - small['nevents']} extra events cost "
              f"{delta} KB of peak RSS (> {STREAM_RSS_SLACK_KB} KB) -- "
              "the folder is accumulating per-event state",
              file=sys.stderr)
        return 4
    return 0


def roms_dataset() -> dict:
    """Trace a high-np ROMS run once (untimed) and store it both ways.

    The binary layout is re-derived from the *text* files so both legs
    parse float-identical inputs (text carries 6 decimal places)."""
    if "roms" in _datasets:
        return _datasets["roms"]
    bundle = trace_run(roms_program, 32, None,
                       ROMSParams(nsteps=600, history_every=2))
    text_dir = Path(tempfile.mkdtemp(prefix="bench_roms_text_"))
    bin_dir = Path(tempfile.mkdtemp(prefix="bench_roms_bin_"))
    bundle.save(text_dir)
    canon = TraceBundle.load(text_dir)
    canon.save(bin_dir, binary=True)
    ds = {"text_dir": text_dir, "bin_dir": bin_dir,
          "metadata": canon.metadata, "nprocs": canon.nprocs}
    _datasets["roms"] = ds
    return ds


def characterize_roms_records() -> IOModel:
    ds = roms_dataset()
    records = []
    for rank in range(ds["nprocs"]):
        records.extend(read_trace_file(ds["text_dir"] / f"trace.{rank}"))
    bundle = TraceBundle(nprocs=ds["nprocs"], records=records,
                         metadata=ds["metadata"])
    return IOModel.from_trace(bundle, app_name="roms", method="records")


def characterize_roms_columnar() -> IOModel:
    ds = roms_dataset()
    bundle = TraceBundle.load(ds["bin_dir"])
    return IOModel.from_columns(bundle.columns, ds["metadata"],
                                ds["nprocs"], app_name="roms")


# -- distributed sweep (cluster executor) -------------------------------------
#
# The cluster backend's measurable win on a single-core CI box is
# dispatch amortization: persistent socket workers pay interpreter
# start + repro import + handshake once per *worker*, while the naive
# way to distribute (a fresh runner process per job, the ssh-out
# pattern) pays it once per *job*.  Before: spawn-per-job dispatch of
# the same replay jobs.  After: one persistent 4-worker cluster with
# pipelined dispatch.  Both legs run identical compute, so the ratio
# isolates the orchestration overhead -- the part of cluster mode that
# wins on any machine.  (On a multi-core or multi-node host the
# persistent cluster additionally overlaps the compute itself; a
# single effective core cannot show that, and an in-process serial
# sweep of CPU-bound jobs will beat both legs here.  The distinct
# request sizes per phase keep the planner's dedup from collapsing the
# jobs.)

SWEEP_CLUSTER_PHASES = 8
SWEEP_CLUSTER_REP = 240


def sweep_cluster_jobs() -> dict:
    """16 unique replay jobs: 8 distinct phases x 2 configurations."""
    from repro.core.offsetfn import OffsetFunction as OF

    jobs: dict[str, tuple] = {}
    for i in range(SWEEP_CLUSTER_PHASES):
        rs = MB + i * 4096  # distinct sizes: no planner/job dedup
        offs = OF(slope=Fraction(rs), intercept=Fraction(0))
        op = PhaseOp(op="write_at", kind="write", request_size=rs, disp=0,
                     offset_fn=offs, abs_offset_fn=offs)
        ph = Phase(phase_id=i, file_group=f"f{i}", rep=SWEEP_CLUSTER_REP,
                   ops=(op,), ranks=tuple(range(4)), tick=1.0,
                   first_time=0.0, duration=1.0)
        jobs[f"A-{i:02d}"] = (ph, configuration_a)
        jobs[f"B-{i:02d}"] = (ph, configuration_b)
    return jobs


def sweep_spawn_per_job() -> dict:
    """Before leg: a fresh single-worker cluster per job."""
    from repro.core.executors import ClusterExecutor
    from repro.core.planner import _run_replay_job

    results = {}
    for name, args in sweep_cluster_jobs().items():
        ex = ClusterExecutor(spawn=1)
        for n, _failure, result in ex.run(_run_replay_job, {name: args}):
            results[n] = result
    return results


def sweep_cluster_persistent() -> dict:
    """After leg: one persistent 4-worker cluster, pipelined dispatch."""
    from repro.core.executors import ClusterExecutor
    from repro.core.planner import _run_replay_job
    from repro.core.sweep import sweep_map

    return sweep_map(_run_replay_job, sweep_cluster_jobs(),
                     executor=ClusterExecutor(spawn=4))


def summarize_sweep(results: dict) -> dict:
    """The replayed bandwidths, compared bit-for-bit across legs."""
    return {name: est.bw_ch_mb_s for name, est in sorted(results.items())}


# -- configuration-lattice selection ------------------------------------------
#
# select_configuration over the full 4096-point ConfigSpace (RAID level
# x members x stripe x network x IONs x disk tier).  Before: the replay
# loop -- one IOR simulation per unique (phase, config) pair.  After:
# the analytic lattice kernels evaluate eqs. (1)-(4) for all 4096
# configurations in one vectorized pass.  The analytic times are an
# approximation of the replays, so only the *selection* (the winner,
# which is what the paper's methodology outputs) is compared -- block
# sizes are chosen at the replication steady-state floor so the replay
# leg costs milliseconds per config instead of seconds.

def lattice_phases() -> list[Phase]:
    def mkphase(pid, kind):
        offs = OffsetFunction(slope=Fraction(0), intercept=Fraction(0))
        op = PhaseOp(op=kind, kind=kind, request_size=8 * MB, disp=0,
                     offset_fn=offs, abs_offset_fn=offs)
        return Phase(phase_id=pid, file_group=f"f{pid}", rep=24, ops=(op,),
                     ranks=(0, 1), tick=1.0, first_time=0.0, duration=1.0)

    return [mkphase(0, "write"), mkphase(1, "read")]


def select_4k_replay():
    from repro.core.estimate import select_configuration
    from repro.core.lattice import ConfigSpace

    return select_configuration(lattice_phases(), ConfigSpace().factories())


def select_4k_lattice():
    from repro.core.estimate import select_configuration
    from repro.core.lattice import ConfigSpace

    space = ConfigSpace()
    return select_configuration(lattice_phases(), space.factories(),
                                lattice=space.params())


# -- output canonicalization --------------------------------------------------

def summarize_study(study: dict) -> dict:
    """Flatten a full_study result into comparable scalars."""
    out: dict[str, float | str] = {"best": study["selection"]["best"]}
    for name, total in sorted(study["selection"]["totals"].items()):
        out[f"total_time_ch[{name}]"] = total
    for name, report in sorted(study["estimates"].items()):
        for p in report.phases:
            out[f"bw_ch[{name}][{p.phase_id}]"] = p.bw_ch_mb_s
            out[f"time_ch[{name}][{p.phase_id}]"] = p.time_ch
    for name, ev in sorted(study["evaluations"].items()):
        for row in ev.rows:
            out[f"usage[{name}][{row.phase_id}]"] = row.usage_pct
            out[f"error[{name}][{row.phase_id}]"] = row.error_rel_pct
            out[f"bw_md[{name}][{row.phase_id}]"] = row.bw_md_mb_s
    return out


def summarize_model(model: IOModel) -> dict:
    """Bit-exact digest of an abstract model (string compare, rtol 0)."""
    return {"nphases": model.nphases,
            "model_json": json.dumps(model.to_dict(), sort_keys=True)}


def compare(before: dict, after: dict, rtol: float = 1e-9) -> list[str]:
    """Relative differences beyond ``rtol``; empty means identical."""
    drift = []
    for key in sorted(set(before) | set(after)):
        a, b = before.get(key), after.get(key)
        if isinstance(a, str) or isinstance(b, str):
            if a != b:
                drift.append(f"{key}: {a!r} != {b!r}")
            continue
        if a is None or b is None:
            drift.append(f"{key}: missing on one side")
            continue
        if abs(a - b) > rtol * max(abs(a), abs(b), 1e-30):
            drift.append(f"{key}: {a!r} vs {b!r}")
    return drift


def timed(fn):
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - t0
    finally:
        gc.enable()


# -- driver -------------------------------------------------------------------

@dataclasses.dataclass
class Workload:
    """One before/after comparison."""

    name: str
    before: Callable[[], object]
    after: Callable[[], object]
    summarize: Callable[[object], dict]
    rtol: float = 1e-9
    legacy_before: bool = False  # run the before leg in legacy_core()
    min_speedup: float | None = None  # enforced under --check-baseline
    repeat: int = 1  # legs run `repeat` times; best time wins (noise)
    fresh_store: bool = False  # attach a fresh persistent store: with
    # repeat >= 2 the first after leg populates it cold and the next
    # warm-starts from disk, so best-of records the warm path


WORKLOADS = [
    Workload("full_study_madbench2", study_madbench2, study_madbench2,
             summarize_study, legacy_before=True),
    Workload("full_study_btio", study_btio, study_btio, summarize_study,
             legacy_before=True),
    # Extrapolation is an analytic closure: bit-identity is not claimed,
    # agreement to 1e-6 relative is (and is asserted here).
    Workload("replay_high_rep", replay_full, replay_extrapolated,
             lambda bw: {"bw": bw}, rtol=1e-6, legacy_before=True),
    # Characterization: identical models required (rtol 0 on the JSON).
    Workload("characterize_synth_large", characterize_synth_records,
             characterize_synth_columnar, summarize_model, rtol=0.0,
             min_speedup=5.0, repeat=2),
    Workload("characterize_synth_fallback", characterize_synth_records,
             characterize_synth_fallback, summarize_model, rtol=0.0,
             min_speedup=5.0, repeat=2),
    Workload("characterize_roms_np32", characterize_roms_records,
             characterize_roms_columnar, summarize_model, rtol=0.0,
             min_speedup=5.0, repeat=2, fresh_store=True),
    # Streaming: the 1M-event trace never materializes; identical model.
    # Both legs are dominated by the text parse, but the streaming leg
    # now runs the ingest engine's bulk tokenizer over newline-aligned
    # ~4 MiB blocks (vectorized digit sweeps, one numpy pass per
    # column) and skips the incremental StreamDigest when no store is
    # attached, while the record leg pays per-line object churn.
    # Measured ~5.2x isolated, ~3.1-3.5x in-suite (the warm allocator
    # flatters the record leg); pre-kernel the same in-suite
    # measurement sat near 1.5x.  The floor trips if the bulk kernel
    # stops engaging (e.g. eligibility check regressions force the
    # line-wise fallback).  The memory win -- blocks stream, the trace
    # never materializes -- is enforced by --check-stream-rss.
    Workload("characterize_stream_1m", characterize_stream_records,
             characterize_stream_streaming, summarize_model, rtol=0.0,
             min_speedup=3.0, repeat=2),
    # Parse cache: classic line-wise parse of the 1M-event text bundle
    # vs the ingest engine with a fresh persistent store.  Repeat 1
    # parses through the bulk kernel and materializes each file's
    # packed .trc encoding in the store (content-keyed by the text's
    # sha256); repeat 2 is pure cache load -- re-ingest at bundle-load
    # speed, which is where the >= 10x floor sits.  Identical columns
    # asserted down to the content digest.
    Workload("ingest_1m_warm", ingest_1m_classic, ingest_1m_cached,
             summarize_columns, rtol=0.0, min_speedup=10.0, repeat=2,
             fresh_store=True),
    # Cluster sweep: persistent socket workers vs spawn-per-job
    # dispatch of identical replay jobs (bit-identical bandwidths).
    # The 3-3.7x observed headroom is interpreter/import/handshake
    # amortization, which holds on a single-core runner (multi-core
    # compute overlap comes on top elsewhere); the floor leaves room
    # for a heavily loaded machine, where the persistent-worker leg
    # degrades more than the spawn-per-job one.
    Workload("sweep_cluster", sweep_spawn_per_job, sweep_cluster_persistent,
             summarize_sweep, rtol=0.0, min_speedup=1.5),
    # Lattice: analytic times approximate the replays, so the compared
    # output is the selection itself (winner name), not the times.
    Workload("select_lattice_4k", select_4k_replay, select_4k_lattice,
             lambda choice: {"best": choice.best}, min_speedup=20.0),
]


def run_legs() -> dict:
    report: dict = {"workloads": {}, "drift": {}, "output_drift": {},
                    "output_digest": {}, "cache_stats": {}}

    # dataset generation is setup, not measured work
    characterization_dataset()
    roms_dataset()
    stream_dataset()

    for wl in WORKLOADS:
        prev_store = store.active()
        if wl.fresh_store:
            store.attach(tempfile.mkdtemp(prefix="bench_store_"))
        try:
            t_before = t_after = float("inf")
            after_runs: list[float] = []
            for _ in range(wl.repeat):
                simcache.clear_all()
                if wl.legacy_before:
                    with legacy_core():
                        res_before, t = timed(wl.before)
                else:
                    res_before, t = timed(wl.before)
                t_before = min(t_before, t)
                # clearing between repeats forces warm after legs through
                # the *persistent* store, not the in-memory memo
                simcache.clear_all()
                res_after, t = timed(wl.after)
                after_runs.append(t)
                t_after = min(t_after, t)
        finally:
            if wl.fresh_store:
                if prev_store is not None:
                    store.attach(prev_store.root)
                else:
                    store.detach()
        summary_after = wl.summarize(res_after)
        mismatches = compare(wl.summarize(res_before), summary_after,
                             rtol=wl.rtol)
        entry = {
            "before_s": round(t_before, 4),
            "after_s": round(t_after, 4),
            "speedup": round(t_before / max(t_after, 1e-9), 2),
        }
        if wl.min_speedup is not None:
            entry["min_speedup"] = wl.min_speedup
        report["workloads"][wl.name] = entry
        # drift = per-repeat timing deltas vs the recorded (best) after_s;
        # output mismatches live in output_drift and gate the run
        report["drift"][wl.name] = [round(t - t_after, 4) for t in after_runs]
        report["output_drift"][wl.name] = mismatches
        report["output_digest"][wl.name] = hashlib.sha256(
            json.dumps(summary_after, sort_keys=True).encode("utf-8")
        ).hexdigest()
        # clear_all() zeroes the counters, so these are per-workload
        # (last repeat -- the warm one when the store is populated).
        report["cache_stats"][wl.name] = simcache.stats()
        status = "OK" if not mismatches else f"DRIFT({len(mismatches)})"
        print(f"{wl.name:28s} before={t_before:8.3f}s after={t_after:8.3f}s "
              f"speedup={t_before / max(t_after, 1e-9):6.2f}x  {status}")

    before_total = sum(w["before_s"] for w in report["workloads"].values())
    after_total = sum(w["after_s"] for w in report["workloads"].values())
    report["total"] = {
        "before_s": round(before_total, 4),
        "after_s": round(after_total, 4),
        "speedup": round(before_total / max(after_total, 1e-9), 2),
    }
    report["identical_outputs"] = not any(report["output_drift"].values())
    print(f"{'TOTAL':28s} before={before_total:8.3f}s "
          f"after={after_total:8.3f}s "
          f"speedup={report['total']['speedup']:6.2f}x")
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_perf.json",
                    help="where to write the JSON report")
    ap.add_argument("--check-baseline", action="store_true",
                    help="fail on >30%% regression vs BENCH_baseline.json "
                         "or a missed per-workload minimum speedup")
    ap.add_argument("--check-warm", metavar="COLD_JSON",
                    help="assert this run warm-started full_study_* from "
                         "the persistent store: after_s <= cold/5, disk "
                         "hits recorded, identical output digest (compare "
                         "against the given cold run's report)")
    ap.add_argument("--check-stream-rss", action="store_true",
                    help="assert streaming characterization's peak RSS is "
                         "independent of the event count (two subprocess "
                         "probes; no benchmark legs run)")
    ap.add_argument("--stream-rss-probe", type=int, metavar="N",
                    help=argparse.SUPPRESS)  # subprocess body of the check
    args = ap.parse_args(argv)

    if args.stream_rss_probe:
        return stream_rss_probe(args.stream_rss_probe)
    if args.check_stream_rss:
        return check_stream_rss()

    report = run_legs()
    from repro.ioutil import atomic_write_text
    atomic_write_text(Path(args.out), json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not report["identical_outputs"]:
        for name, drift in report["output_drift"].items():
            for line in drift:
                print(f"DRIFT {name}: {line}", file=sys.stderr)
        return 1

    if args.check_warm:
        cold = json.loads(Path(args.check_warm).read_text())
        failed = False
        for name, entry in report["workloads"].items():
            if not name.startswith("full_study"):
                continue
            cold_after = cold["workloads"][name]["after_s"]
            warm_after = entry["after_s"]
            allowed = cold_after / WARM_SPEEDUP_FLOOR
            disk_hits = sum(st.get("disk_hits", 0) for st in
                            report["cache_stats"].get(name, {}).values())
            digest_ok = (report["output_digest"][name]
                         == cold["output_digest"][name])
            print(f"warm {name}: cold={cold_after:.3f}s "
                  f"warm={warm_after:.3f}s (allowed<={allowed:.3f}s) "
                  f"disk_hits={disk_hits} "
                  f"digest={'same' if digest_ok else 'DIFFERENT'}")
            if warm_after > allowed:
                print(f"warm-cache failure: {name} warm after_s "
                      f"{warm_after:.3f} > cold/{WARM_SPEEDUP_FLOOR:.0f} "
                      f"= {allowed:.3f}", file=sys.stderr)
                failed = True
            if disk_hits <= 0:
                print(f"warm-cache failure: {name} recorded no persistent "
                      "store hits", file=sys.stderr)
                failed = True
            if not digest_ok:
                print(f"warm-cache failure: {name} output digest differs "
                      "from the cold run", file=sys.stderr)
                failed = True
        if failed:
            return 3

    if args.check_baseline:
        failed = False
        for name, entry in report["workloads"].items():
            need = entry.get("min_speedup")
            if need is not None and entry["speedup"] < need:
                print(f"perf regression: {name} speedup "
                      f"{entry['speedup']:.2f}x < required {need:.1f}x",
                      file=sys.stderr)
                failed = True
        baseline_path = Path(__file__).parent / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        allowed = baseline["total"]["after_s"] * REGRESSION_TOLERANCE
        got = report["total"]["after_s"]
        print(f"baseline after_s={baseline['total']['after_s']:.3f} "
              f"allowed<={allowed:.3f} got={got:.3f}")
        if got > allowed:
            print("perf regression: after_s exceeds 130% of baseline",
                  file=sys.stderr)
            failed = True
        if failed:
            return 2

    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 4: phases 1 and 2 of the 4-process example.

Phase 1: the four processes' first collective write, view offset 0.
Phase 2: the second write, one repetition later, ticks ~122 higher --
the offset difference being the displacement from the initial offset.
"""

from __future__ import annotations

from repro.report.figures import figure4_phases

from bench_common import once, synthetic_study
from repro.core.model import IOModel


def test_figure4_phases(benchmark):
    def pipeline():
        model, bundle = synthetic_study()
        return model, figure4_phases(model, nphases=2)

    model, text = once(benchmark, pipeline)
    print("\n" + text)

    ph1, ph2 = model.phases[0], model.phases[1]
    assert ph1.ranks == ph2.ranks == (0, 1, 2, 3)
    # Same similar pattern (simLAP), occurring one repetition later.
    assert ph1.ops[0].op == ph2.ops[0].op == "MPI_File_write_at_all"
    assert ph1.ops[0].request_size == ph2.ops[0].request_size == 10612080
    # View-relative offsets: phase 1 at 0, phase 2 at 265302 etypes.
    assert ph1.ops[0].offset_fn(0) == 0
    assert ph2.ops[0].offset_fn(0) == 265302
    # Phase 2 happens ~122 ticks after phase 1 (Fig. 4's tick column).
    assert 100 <= ph2.tick - ph1.tick <= 140

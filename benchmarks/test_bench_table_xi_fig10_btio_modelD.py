"""Table XI + Figure 10: BT-IO class D model and its phase formulas.

Class D: 50 collective-write phases plus a 50-rep read phase, with

    phases 1-50:  np W, initOffset = rs*idP + rs*(ph-1) + rs*(np-1)*(ph-1)
    phase  51:    np R, rep 50, same formula over the repetition index

(the two +rs terms collapse to rs*idP + rs*np*(ph-1)).  The paper finds
the same model on configuration C and Finisterrae for 36, 64 and 121
processes -- only the weights change with np.
"""

from __future__ import annotations

from repro.apps.btio import BTIOParams
from repro.report.tables import phases_table

from bench_common import btio_model, once


def test_table_xi_fig10_btio_class_d_model(benchmark):
    def pipeline():
        model36, _ = btio_model("D", 36)
        model64, _ = btio_model("D", 64)
        return model36, model64

    model36, model64 = once(benchmark, pipeline)
    table = phases_table(model36, title="Table XI: BT-IO class D, 36 procs")
    print("\n" + "\n".join(table.splitlines()[:6]) + "\n  ...\n"
          + table.splitlines()[-1])

    for model, np_ in ((model36, 36), (model64, 64)):
        rs = BTIOParams(cls="D").request_size(np_)
        assert model.nphases == 51
        # Phases 1-50: writes with the Table XI offset formula.
        for ph_num in (1, 2, 25, 50):
            ph = model.phases[ph_num - 1]
            assert ph.op_label == "W" and ph.rep == 1
            fn = ph.ops[0].abs_offset_fn
            assert fn.slope == rs
            assert fn.intercept == rs * (ph_num - 1) + \
                rs * (np_ - 1) * (ph_num - 1)
            assert ph.weight == np_ * rs
        # Phase 51: the 50-rep read phase.
        last = model.phases[50]
        assert last.op_label == "R" and last.rep == 50
        assert last.weight == 50 * np_ * rs
        assert last.ops[0].disp > 0  # strides dump-to-dump

    # Same model shape for both process counts; weights scale with class
    # volume (total bytes constant: np * rs is the mesh dump size).
    assert model36.nphases == model64.nphases
    assert model36.total_weight == model64.total_weight

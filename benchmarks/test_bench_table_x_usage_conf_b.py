"""Table X: I/O system utilization of MADbench2 on configuration B.

The paper reports MADbench2 using "about 30 %" of configuration B's
capacity (eq. 4's ideal-parallel BW_PK over the 3 PVFS2 I/O nodes),
even though the device monitor shows the disks ~100 % busy during the
phases -- the gap between ideal parallel peak and striped, interleaved
reality that Fig. 8 illustrates.
"""

from __future__ import annotations

from repro.report.tables import usage_table

from bench_common import GB, once, usage_study


def test_table_x_usage_configuration_b(benchmark):
    ev, peaks = once(benchmark, lambda: usage_study("configuration-B"))
    print("\n" + usage_table(
        ev, title="Table X: system utilization on configuration B"))
    print(f"IOzone peaks (eq. 4): write={peaks['write']:.0f} "
          f"read={peaks['read']:.0f} MB/s")

    assert [r.n_operations for r in ev.rows] == [128, 32, 192, 32, 128]
    assert [r.weight // GB for r in ev.rows] == [4, 1, 6, 1, 4]

    # eq. (4): sum of the three JBOD nodes' maxima (~240 MB/s).
    assert 180 <= peaks["write"] <= 280
    assert 200 <= peaks["read"] <= 300

    for row in ev.rows:
        # "about 30 %" -> accept the 25-45 band.
        assert 25 <= row.usage_pct <= 45, f"phase {row.phase_id}"
        # Table X reports usage only; small phases inherit queue/cache
        # history from their predecessors, so allow a looser error band
        # than the BT-IO tables' 10 %.
        assert row.error_rel_pct < 25

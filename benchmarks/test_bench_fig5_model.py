"""Figure 5: the I/O abstract model of the 4-process example.

Regenerates the 3-D global access pattern (tick, process, offset): 40
write phases marching diagonally through the file plus one read phase
forming the "vertical blue line", with the strided spatial pattern
(each process writing its block of every repetition group).
"""

from __future__ import annotations

from repro.core.patterns import ascii_plot, global_access_pattern, to_csv

from bench_common import once, synthetic_study

RS = 10612080


def test_figure5_global_access_pattern(benchmark):
    def pipeline():
        model, bundle = synthetic_study()
        points = global_access_pattern(bundle.records, model)
        return model, points

    model, points = once(benchmark, pipeline)
    print("\n" + ascii_plot(points, width=70, height=16))
    print(f"[csv: {len(to_csv(points).splitlines()) - 1} points]")

    assert model.nphases == 41
    # Every point belongs to a phase.
    assert all(p.phase_id is not None for p in points)
    writes = [p for p in points if p.kind == "write"]
    reads = [p for p in points if p.kind == "read"]
    assert len(writes) == 4 * 40 and len(reads) == 4 * 40

    # Spatial pattern: phase ph's process p starts at (p + 4*(ph-1)) * rs.
    for ph_num in (1, 2, 40):
        fn = model.phases[ph_num - 1].ops[0].abs_offset_fn
        for p in range(4):
            assert fn(p) == (p + 4 * (ph_num - 1)) * RS

    # Temporal pattern: the read phase is one burst ("vertical line") --
    # all its operations share one narrow tick window per rank.
    read_ticks = sorted({p.tick for p in reads if p.rank == 0})
    assert read_ticks[-1] - read_ticks[0] == 39  # 40 back-to-back events

    # Writes span the whole execution (separated by communication).
    write_ticks = sorted({p.tick for p in writes if p.rank == 0})
    assert write_ticks[-1] - write_ticks[0] > 39 * 100

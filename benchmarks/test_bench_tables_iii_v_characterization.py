"""Tables III-V: the IOR / IOzone characterization parameter spaces.

Table III: IOR input parameters (FZ = NP*b, RS via -t, access mode,
shared/unique via -F, collective via -c).  Table IV: IOzone inputs
(file size -s, request size -y, sequential/strided/random modes).
Table V: the output metrics (mean read/write times, IOPS, MB/s).

The bench sweeps a compact grid of both benchmarks on configuration A
and checks the metric relations the methodology relies on.
"""

from __future__ import annotations

from repro.apps.ior import IORParams, run_ior
from repro.apps.iozone import IOzoneParams, run_iozone
from repro.clusters import configuration_a
from repro.report.tables import render

from bench_common import MB, once


def sweep():
    ior_grid = []
    for collective in (False, True):
        for unique in (False, True):
            # Blocks sized past the NAS write-back cache (FZ rule of
            # Table II) so the sweep measures sustained rates.
            params = IORParams(np=8, block_size=256 * MB, transfer_size=32 * MB,
                               collective=collective, file_per_process=unique)
            result = run_ior(configuration_a(), params)
            ior_grid.append((params, result))

    ion = configuration_a().globalfs.ions[0]
    iozone = run_iozone(ion, IOzoneParams(
        file_size_mb=2048, request_sizes_kb=(256, 1024, 4096),
        max_ops_per_cell=1024))
    return ior_grid, iozone


def test_tables_iii_v_characterization_sweeps(benchmark):
    ior_grid, iozone = once(benchmark, sweep)

    rows = [[p.command_line(), f"{r.bw('write'):.0f}", f"{r.bw('read'):.0f}"]
            for p, r in ior_grid]
    print("\n" + render(["IOR invocation (Table III)", "BW_w", "BW_r"], rows))
    rows = [[p, k, rkb, f"{bw:.0f}"] for (p, k, rkb), bw
            in sorted(iozone.grid.items())]
    print(render(["pattern (Table IV)", "op", "RS (KB)", "MB/s"], rows,
                 title="IOzone on configuration A's I/O node"))

    # Table V metrics exist and are positive for every cell.
    for _, result in ior_grid:
        assert result.bw("write") > 0 and result.bw("read") > 0
        assert result.times["write"] > 0 and result.times["read"] > 0
    assert all(v > 0 for v in iozone.grid.values())

    # Relations the methodology uses:
    # (a) IOzone's sequential pattern dominates random (peak extraction).
    for kind in ("write", "read"):
        assert iozone.bw("sequential", kind, 4096) >= \
            iozone.bw("random", kind, 4096)
    # (b) the device-level peak is far above what IOR sees through NFS.
    for _, result in ior_grid:
        assert iozone.peak_bw("write") > 2 * result.bw("write")

"""Extension: characterize small, predict big.

The paper notes the BT-IO model keeps its shape across 36/64/121
processes (Table XI: "We have obtained the same behavior for the class
D for 36, 64 and 121 processes").  ``repro.core.rescale`` turns that
observation into a capability: characterize the application once at a
*small* process count, rescale the model to the production count, and
run the Table XII estimation there -- never tracing the big run.

This bench predicts the 64-process class-D estimates on configuration C
and Finisterrae from a 16-process characterization and compares them
with the estimates from a true 64-process model.
"""

from __future__ import annotations

from repro.clusters import configuration_c, finisterrae
from repro.core.estimate import estimate_model
from repro.core.model import models_equivalent
from repro.core.rescale import rescale_model

from bench_common import btio_model, once


def study():
    small, _ = btio_model("D", 16)
    real, _ = btio_model("D", 64)
    predicted = rescale_model(small, 64, etype_size=40)
    rows = {}
    for name, factory in [("conf-C", configuration_c),
                          ("finisterrae", finisterrae)]:
        est_real = estimate_model(real.phases, factory, name)
        est_pred = estimate_model(predicted.phases, factory, name)
        rows[name] = (est_real.total_time_ch, est_pred.total_time_ch)
    return real, predicted, rows


def test_extension_rescaled_prediction(benchmark):
    real, predicted, rows = once(benchmark, study)

    print("\nExtension: 64p class-D estimates from a 16p characterization")
    print(f"{'config':<14} {'real-64p est':>13} {'rescaled-16p est':>17} {'gap':>6}")
    for name, (t_real, t_pred) in rows.items():
        gap = 100 * abs(t_pred - t_real) / t_real
        print(f"{name:<14} {t_real:>12.1f}s {t_pred:>16.1f}s {gap:>5.1f}%")
        # The predicted estimate tracks the true-model estimate closely.
        assert gap < 10.0

    # The rescaled model is structurally the real 64p model.
    assert models_equivalent(real, predicted)
    # And the selection decision is identical.
    assert (rows["finisterrae"][0] < rows["conf-C"][0]) == \
        (rows["finisterrae"][1] < rows["conf-C"][1])

"""Figure 3: the Local Access Pattern files of the 4-process example.

Each process's 40 writes compress into one LAP row (rep 40,
rs 10 612 080, disp 265 302 etypes, initOffset 0 in its view), followed
by the matching 40-rep read row -- exactly Fig. 3's lines.
"""

from __future__ import annotations

from repro.core.lap import extract_laps
from repro.report.figures import figure3_lap

from bench_common import once, synthetic_study


def test_figure3_lap(benchmark):
    def pipeline():
        _, bundle = synthetic_study()
        entries = extract_laps(bundle.records)
        return entries, figure3_lap(entries)

    entries, text = once(benchmark, pipeline)
    print("\n" + text)

    # Writes appear as 40 one-shot entries per rank (they are separated
    # by communication); the reads compress into one rep-40 entry.
    for rank in range(4):
        rank_entries = [e for e in entries if e.rank == rank]
        reads = [e for e in rank_entries if e.ops[0].kind == "read"]
        assert len(reads) == 1
        (read,) = reads
        assert read.rep == 40
        assert read.ops[0].request_size == 10612080
        assert read.ops[0].disp == 265302
        assert read.ops[0].init_offset == 0  # view-relative, like Fig. 3

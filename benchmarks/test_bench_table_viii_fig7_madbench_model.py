"""Table VIII + Figure 7: the I/O model of MADbench2.

16 processes, 8KPIX, shared filetype, 32 MB request size -> five phases:

    1: 16 write, initOffset idP*8*32MB,          rep 8, 4 GB
    2: 16 read,  initOffset idP*8*32MB,          rep 2, 1 GB
    3: 16 W-R,   writes at idP*8*32MB,
                 reads at idP*8*32MB + 2*32MB,   rep 6, 6 GB
    4: 16 write, bins 6-7 (paper: -2*32MB from the region end), rep 2, 1 GB
    5: 16 read,  initOffset idP*8*32MB,          rep 8, 4 GB
"""

from __future__ import annotations

from repro.core.patterns import ascii_plot, global_access_pattern
from repro.report.tables import phases_table

from bench_common import GB, MB, madbench_model, once

RS = 32 * MB


def test_table_viii_and_fig7_madbench_model(benchmark):
    model, bundle = once(benchmark, madbench_model)

    print("\n" + phases_table(
        model, title="Table VIII: I/O phases of MADbench2 (16 procs)"))
    points = global_access_pattern(bundle.records, model)
    print(ascii_plot(points, width=70, height=16))

    assert model.nphases == 5
    assert [ph.op_label for ph in model.phases] == ["W", "R", "W-R", "W", "R"]
    assert [ph.rep for ph in model.phases] == [8, 2, 6, 2, 8]
    assert [ph.weight // GB for ph in model.phases] == [4, 1, 6, 1, 4]
    assert all(ph.np == 16 for ph in model.phases)
    assert all(ph.request_size == RS for ph in model.phases)

    # f(initOffset) = idP * 8 * 32MB for phases 1, 2, 5.
    for idx in (0, 1, 4):
        fn = model.phases[idx].ops[0].abs_offset_fn
        assert fn.slope == 8 * RS and fn.intercept == 0
    # Phase 3's reads run two bins ahead (+2 * 32MB).
    read_op = next(o for o in model.phases[2].ops if o.kind == "read")
    assert read_op.abs_offset_fn.intercept == 2 * RS
    # Phase 4 writes the trailing two bins.
    assert model.phases[3].ops[0].abs_offset_fn.intercept == 6 * RS

    # Metadata bullets of section IV-A.
    (f,) = model.metadata.files
    text = " ".join(f.statements())
    for fragment in ("Individual file pointers", "Non-collective",
                     "Sequential access mode", "Shared access type"):
        assert fragment in text

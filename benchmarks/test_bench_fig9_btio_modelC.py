"""Figure 9: the I/O model of NAS BT-IO, class C, 16 processes.

The paper extracts the model on configurations A and B and obtains the
*same* model -- its system independence.  We characterize on the neutral
platform and on both Aohyper configurations and compare: 41 phases
(40 collective writes + 1 read phase of rep 40), identical weights and
offset functions everywhere.
"""

from __future__ import annotations

from repro.apps.btio import BTIOParams, btio_program
from repro.clusters import configuration_a, configuration_b
from repro.core.model import IOModel
from repro.report.tables import phases_table
from repro.tracer import trace_run

from bench_common import btio_model, once


def _model_on(factory) -> IOModel:
    params = BTIOParams(cls="C")
    bundle = trace_run(btio_program, 16, factory() if factory else None, params)
    return IOModel.from_trace(bundle, app_name="btio-C")


def test_figure9_btio_class_c_model_independent(benchmark):
    def pipeline():
        neutral, _ = btio_model("C", 16)
        on_a = _model_on(configuration_a)
        on_b = _model_on(configuration_b)
        return neutral, on_a, on_b

    neutral, on_a, on_b = once(benchmark, pipeline)
    table = phases_table(neutral,
                         title="Fig. 9: BT-IO class C, 16 procs (41 phases)")
    print("\n" + "\n".join(table.splitlines()[:8]) + "\n  ...")

    for model in (neutral, on_a, on_b):
        assert model.nphases == 41
        assert [ph.op_label for ph in model.phases[:40]] == ["W"] * 40
        assert model.phases[40].op_label == "R"
        assert model.phases[40].rep == 40

    # The model is identical across configurations: same phases, same
    # weights, same offset expressions (only measured durations differ).
    for a, b in zip(neutral.phases, on_a.phases):
        assert a.weight == b.weight and a.rep == b.rep
        assert a.ops[0].abs_offset_fn(7) == b.ops[0].abs_offset_fn(7)
    for a, b in zip(neutral.phases, on_b.phases):
        assert a.weight == b.weight and a.rep == b.rep
        assert a.ops[0].abs_offset_fn(7) == b.ops[0].abs_offset_fn(7)

    # Request size ~10 MB (paper: "Request size 10MB").
    rs = neutral.phases[0].request_size
    assert 10_000_000 < rs < 11_000_000
